"""Auto-policy: pick an executor and a kernel backend per problem and host.

``train --executor auto`` has one promise — **never lose to serial** — and
this module is where that promise is enforced. The shipped
BENCH_parallel.json is the cautionary tale: threads at 0.39x and procs at
0.25x of serial on a 1-core container, because the executor was hardcoded
while the host had no silicon to parallelize on (HOGWILD!'s lock-free win
only materializes once per-worker compute dominates coordination, which
needs real cores). The policy therefore treats *serial as the null
hypothesis* and demands measured evidence before rejecting it:

1. ``cpu_count <= 1`` — serial, unconditionally (coordination cannot pay).
2. ``nnz < SMALL_NNZ`` — serial (spawn/barrier overhead is fixed; small
   problems never amortize it, whatever the core count).
3. Otherwise parallel executors are considered only when **evidence** —
   this host's measured ``threads_vs_serial`` / ``procs_vs_serial`` ratios,
   either passed directly (bench_parallel passes the ratios it just
   measured) or recovered from the perf ledger's latest comparable entry —
   shows one of them beating serial by :data:`PARALLEL_MARGIN`. Ledger
   entries from oversubscribed runs (more workers than cores) are ignored:
   their ratios measure contention, not capacity.

Backend choice is size-aware: the Numba JIT pays a multi-second compile on
first launch, so it needs ``nnz >= JIT_NNZ`` to amortize; below that (or
when Numba is absent) the NumPy reference wins. The CuPy stub is never
auto-selected (it round-trips PCIe per wave — see its module docstring).

Decisions publish to the ambient metrics registry
(``repro.policy.executor_selected`` / ``repro.backend.selected``) so runs
record *why* they ran the way they did.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ExecutorChoice",
    "SMALL_NNZ",
    "JIT_NNZ",
    "PARALLEL_MARGIN",
    "choose_backend",
    "choose_executor",
    "evidence_from_ledger",
    "publish_choice",
]

#: below this nnz, coordination overhead dominates any parallel win
SMALL_NNZ = 200_000

#: below this nnz, the Numba JIT compile cost cannot amortize
JIT_NNZ = 10_000

#: a parallel executor must beat serial by this measured factor before the
#: policy will pick it (protects the >= 1.0 auto_vs_serial acceptance bar
#: against ratio noise around 1.0)
PARALLEL_MARGIN = 1.05


@dataclass(frozen=True)
class ExecutorChoice:
    """One resolved auto-policy decision, with its audit trail."""

    executor: str  # "serial" | "threads" | "procs"
    n_workers: int
    backend: str  # resolved backend name ("numpy", "numba", ...)
    reason: str

    def as_dict(self) -> dict:
        return {
            "executor": self.executor,
            "n_workers": self.n_workers,
            "backend": self.backend,
            "reason": self.reason,
        }


def choose_backend(nnz: int, k: int, requested: str = "auto") -> tuple[str, str]:
    """Resolve a backend name for this problem size.

    Returns ``(name, reason)``. An explicit request passes through
    untouched (``get_backend`` still gates and falls back); ``"auto"``
    picks Numba only when it is importable and the problem is big enough
    to amortize the JIT, else the NumPy reference.
    """
    if requested not in (None, "auto"):
        return str(requested), "requested explicitly"
    from repro.backends import BackendType, available_backends

    if BackendType.NUMBA in available_backends() and nnz >= JIT_NNZ:
        return (
            BackendType.NUMBA.value,
            f"numba present and nnz={nnz} >= {JIT_NNZ} amortizes the JIT",
        )
    if BackendType.NUMBA in available_backends():
        return (
            BackendType.NUMPY.value,
            f"nnz={nnz} < {JIT_NNZ}: too small to amortize the numba JIT",
        )
    return BackendType.NUMPY.value, "no accelerated backend available"


def evidence_from_ledger(ledger, cpu_count: int) -> dict | None:
    """Latest usable parallel-bench ratios from a perf ledger, or None.

    Usable means: a ``benchmark == "parallel"`` entry recorded on a host
    with the same ``cpu_count`` (speedup is a property of the silicon) and
    not flagged ``oversubscribed``. The newest such entry wins.
    """
    if ledger is None:
        return None
    match = None
    for entry in ledger.entries():
        if entry.get("benchmark") != "parallel":
            continue
        metrics = entry.get("metrics", {})
        meta = entry.get("meta", {})
        if meta.get("cpu_count") != cpu_count:
            continue
        if metrics.get("oversubscribed"):
            continue
        match = entry
    if match is None:
        return None
    metrics = match["metrics"]
    out = {}
    for key in ("threads_vs_serial", "procs_vs_serial"):
        value = metrics.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[key] = float(value)
    config = match.get("config", {})
    for key in ("n_threads", "n_procs"):
        if isinstance(config.get(key), int):
            out[key] = config[key]
    return out or None


def choose_executor(
    nnz: int,
    k: int,
    *,
    cpu_count: int | None = None,
    backend: str = "auto",
    evidence: dict | None = None,
    ledger=None,
) -> ExecutorChoice:
    """Resolve ``--executor auto`` for one training run.

    ``evidence`` is a mapping with measured ``threads_vs_serial`` /
    ``procs_vs_serial`` ratios (and optionally ``n_threads``/``n_procs``)
    for *this* host; when absent it is recovered from ``ledger`` via
    :func:`evidence_from_ledger`. No evidence means serial — auto never
    gambles on an unmeasured host.
    """
    if cpu_count is None:
        import os

        cpu_count = os.cpu_count() or 1
    backend_name, backend_reason = choose_backend(nnz, k, backend)

    def serial(reason: str) -> ExecutorChoice:
        return ExecutorChoice("serial", 1, backend_name, reason)

    if cpu_count <= 1:
        return serial(f"cpu_count={cpu_count}: parallelism cannot beat serial")
    if nnz < SMALL_NNZ:
        return serial(
            f"nnz={nnz} < {SMALL_NNZ}: too small to amortize worker "
            "coordination"
        )
    if evidence is None:
        evidence = evidence_from_ledger(ledger, cpu_count)
    if not evidence:
        return serial(
            "no measured evidence (bench ratios or perf-ledger entry for "
            f"cpu_count={cpu_count}) that a parallel executor beats serial"
        )
    candidates = []
    threads_ratio = evidence.get("threads_vs_serial", 0.0)
    procs_ratio = evidence.get("procs_vs_serial", 0.0)
    if threads_ratio >= PARALLEL_MARGIN:
        candidates.append(
            ("threads", threads_ratio,
             int(evidence.get("n_threads") or min(cpu_count, 4)))
        )
    if procs_ratio >= PARALLEL_MARGIN:
        candidates.append(
            ("procs", procs_ratio,
             int(evidence.get("n_procs") or min(cpu_count, 4)))
        )
    if not candidates:
        return serial(
            f"measured threads_vs_serial={threads_ratio:.2f} / "
            f"procs_vs_serial={procs_ratio:.2f} below the "
            f"{PARALLEL_MARGIN}x margin"
        )
    executor, ratio, n_workers = max(candidates, key=lambda c: c[1])
    n_workers = max(2, min(n_workers, cpu_count))
    return ExecutorChoice(
        executor, n_workers, backend_name,
        f"measured {executor}_vs_serial={ratio:.2f} >= {PARALLEL_MARGIN}x "
        f"on a cpu_count={cpu_count} host ({backend_reason})",
    )


def publish_choice(choice: ExecutorChoice) -> None:
    """Record the decision in the ambient metrics registry (no-op without
    an active collector)."""
    from repro.backends import available_backends
    from repro.obs.context import active_registry
    from repro.obs.registry import M

    registry = active_registry()
    if registry is None:
        return
    registry.counter(
        M.POLICY_EXECUTOR_SELECTED, {"executor": choice.executor}
    ).inc()
    registry.counter(
        M.BACKEND_SELECTED,
        {"backend": choice.backend, "executor": choice.executor},
    ).inc()
    for btype in available_backends():
        registry.gauge(M.BACKEND_AVAILABLE, {"backend": btype.value}).set(1)

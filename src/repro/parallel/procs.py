"""Lock-free Hogwild! on OS processes over shared-memory feature matrices.

:class:`ProcessHogwild` is the real-parallelism counterpart of the simulated
executors in :mod:`repro.core` and the GIL-bound threads of
:mod:`repro.parallel.threads`: P and Q live in
:mod:`multiprocessing.shared_memory` segments, wrapped by
:meth:`repro.core.model.FactorModel.from_buffers` so every worker process
attaches zero-copy ndarray views and races on them for real — no locks, lost
updates allowed, exactly the HOGWILD! [Niu et al., 2011] semantics §5.1
builds on. Each worker is the process analogue of the paper's GPU worker
pool: it owns a static shard of the compiled
:class:`~repro.sched.plan.EpochPlan` (a contiguous run of worker lanes, cut
by :meth:`EpochPlan.shard`) and executes it wave by wave through its own
private :class:`~repro.core.kernels.WaveWorkspace`, so the per-process hot
loop is the same allocation-free compiled-plan path the serial executor
runs. With ``n_procs=1`` the single shard spans the full plan and execution
is bit-identical to :class:`repro.core.hogwild.BatchHogwild` (pinned by
``tests/test_parallel_procs.py``).

Out-of-core mode swaps the in-memory rating shards for a
:class:`~repro.data.blockstore.BlockStore`: each worker owns a static,
nnz-balanced set of grid blocks and streams them through a double-buffered
:class:`~repro.data.blockstore.BlockPrefetcher`, overlapping shard load
("transfer") with SGD compute the way §6.2's CUDA streams overlap H2D copies
with kernels.

Seeding: worker randomness derives from ``np.random.SeedSequence(seed)``
``.spawn(n_procs)`` — every worker gets an independent, collision-free
stream that is reproducible per (seed, worker id) regardless of ``n_procs``
or start method. The epoch *schedule* RNG (plan permutation) lives in the
parent and matches :class:`BatchHogwild` draw for draw.

Synchronization is two barriers per epoch (dispatch and completion); between
them, nothing synchronizes — that is the point. Per-worker update counts,
staging stats, and control scalars live in small shared arrays with
write-disjoint slots (one per worker id).
"""

from __future__ import annotations

import json
import multiprocessing as mp
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from repro.core.kernels import UPDATE_ERRSTATE, WaveWorkspace
from repro.core.lr_schedule import LearningRateSchedule, NomadSchedule
from repro.core.model import FactorModel
from repro.core.trainer import TrainHistory
from repro.data.blockstore import BlockPrefetcher, BlockStore, PrefetchStats
from repro.data.container import RatingMatrix
from repro.metrics.rmse import rmse
from repro.obs.context import active_tracer
from repro.obs.hooks import EpochEvent, TrainerHooks, resolve_hooks
from repro.obs.profiler import (
    BARRIER_WAIT_BUCKETS,
    StallReport,
    WorkerPhases,
)
from repro.obs.relay import TraceRelay, WorkerTelemetry
from repro.san.core import (
    activate_sanitizer,
    active_sanitizer,
    sanitizer_from_mode,
)
from repro.san.errors import SanitizerError
from repro.san.lifecycle import track_shm
from repro.san.races import dump_log, load_spools
from repro.sched.plan import EpochPlan

__all__ = ["ProcessHogwild"]

#: Shared names with sanctioned cross-worker writes (the process-level
#: analogue of the ``race-shared-write`` thread audit): ``counts``,
#: ``stage``, and ``phases`` are write-disjoint shared arrays (one
#: slot/row per worker id), ``ctl`` is written by the parent between
#: barriers and only read by workers (except the error flag,
#: last-writer-wins by design). ``failures``/``done`` are the barrier
#: waiter thread's hand-off to the watching parent (list append is
#: GIL-atomic, ``Event.set`` is thread-safe). P and Q races are the
#: whole point of Hogwild! and happen inside the kernels.
SHARED_WRITE_OK = ("counts", "ctl", "stage", "phases", "failures", "done")

#: control-array slots: command word, epoch hyperparameters, error flag,
#: current epoch number (for span labelling)
_CTL_SLOTS = 6
_CMD, _LR, _LAM_P, _LAM_Q, _ERR, _EPOCH = range(_CTL_SLOTS)
_CMD_RUN, _CMD_EXIT = 0.0, 1.0

#: columns of the per-worker staging-stats array
_STAGE_FIELDS = 4  # blocks, bytes, load_seconds, wait_seconds

#: columns of the per-worker phase-accounting array (the raw material of
#: :class:`repro.obs.profiler.StallReport`). All slots are cumulative
#: across epochs except EPOCH_BARRIER, which holds the *last* epoch's
#: dispatch-barrier wait (read by the parent between barriers, where it is
#: stable, to feed the per-worker barrier-wait histograms).
_PHASE_FIELDS = 6
(_PH_SPAWN, _PH_BARRIER, _PH_COMPUTE, _PH_PREFETCH, _PH_WALL,
 _PH_EPOCH_BARRIER) = range(_PHASE_FIELDS)

#: parent-side timeout for the completion barrier: generous enough for any
#: realistic epoch, finite so a crashed worker surfaces as BrokenBarrierError
#: instead of a hang
_EPOCH_TIMEOUT_S = 600.0


def _register_skipping_shm(original):
    """Resource-tracker ``register`` shim forwarding all but shm rtypes.

    The previous workaround replaced ``register`` with a bare no-op for the
    attach window, which also swallowed registrations of *other* resource
    types (semaphores, e.g. a ``Barrier`` constructed concurrently on
    another thread) and left them untracked for the process's lifetime.
    This shim drops only the ``"shared_memory"`` rtype — the one the attach
    spuriously registers (bpo-39959) — and forwards everything else.
    """

    def register(name, rtype):
        if rtype != "shared_memory":
            original(name, rtype)

    return register


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without double-registering it.

    Child attaches register with the resource tracker as if they owned the
    segment (bpo-39959), which triggers spurious unlink-at-exit warnings and
    can destroy a segment the parent still owns. Python 3.13 grew
    ``track=False``; older versions need the hook narrowed below.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    # pre-3.13: narrow the tracker's register hook for the duration of the
    # attach (shm registrations dropped, every other rtype still tracked).
    # Unregistering *after* would misfire under fork, where parent and
    # child share one tracker process — the child's unregister would erase
    # the parent's (legitimate, unlink-owning) registration.
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = _register_skipping_shm(original)
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class _ShardPlanView:
    """Duck-typed :class:`EpochPlan` slice for ``WaveWorkspace.bind_plan``.

    Carries exactly the attributes ``bind_plan`` consumes (``matrix``,
    ``n_waves``, ``width``, ``version``); the matrix is a column view into
    the shared plan buffer, and the worker bumps ``version`` once per epoch
    so the workspace re-gathers after the parent's in-place re-permutation.
    """

    __slots__ = ("matrix", "n_waves", "width", "version")

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = matrix
        self.n_waves = matrix.shape[0]
        self.width = matrix.shape[1]
        self.version = 0


def _run_shard(ws, wave_update, plan_view, p, q, rows, cols, vals,
               shard_lengths, lr, lam_p, lam_q):
    """One epoch of one worker's plan shard — the per-process hot loop.

    Identical structure to ``BatchHogwild.run_epoch``: one ``bind_plan``
    gather, then one ``wave_update`` launch per wave through the
    backend-bound kernel (the numpy backend binds the workspace's own
    allocation-free kernel), slicing the shard's live lanes
    (``shard_lengths``, precomputed — padding only ever shortens a wave
    from the right). Registered in lint ``HOT_FUNCTIONS``.
    """
    rows_w, cols_w, vals_w = ws.bind_plan(plan_view, rows, cols, vals)
    updates = 0
    i = 0
    with np.errstate(**UPDATE_ERRSTATE):
        for wr, wc, wv in zip(rows_w, cols_w, vals_w):
            w = shard_lengths[i]
            i += 1
            if w == 0:
                continue
            wave_update(p, q, wr[:w], wc[:w], wv[:w], lr, lam_p, lam_q)
            updates += w
    return updates


def _run_blocks(ws, serial_update, prefetcher, p, q, lr, lam_p, lam_q,
                max_wave, san=None, wid=0, epoch=0):
    """One epoch of one worker's block set — the out-of-core hot loop.

    Blocks arrive through the double-buffered prefetcher (next shard loads
    while this one computes); each block replays through the backend's
    serial-equivalent kernel (numpy: :func:`sgd_serial_update`) with the
    paper's chunk size as the wave cap. With a sanitizer attached each
    block's update coverage lands in the shadow access log (exactly-once
    auditing; the per-sample write order inside a block is serial).
    Registered in lint ``HOT_FUNCTIONS``.
    """
    updates = 0
    seq = 0
    for _, rec in prefetcher:
        rows = rec["u"]
        cols = rec["v"]
        vals = rec["r"]
        serial_update(p, q, rows, cols, vals, lr, lam_p, lam_q,
                      max_wave=max_wave, workspace=ws)
        if san is not None:
            san.block_executed(wid, epoch, seq, rows, cols)
        seq += 1
        updates += len(rec)
    return updates


@dataclass
class _WorkerConfig:
    """Everything a worker needs, picklable for any start method.

    Shared-memory segments travel as names (workers re-attach); barriers
    travel through multiprocessing's own reduction machinery.
    """

    wid: int
    n_procs: int
    start_barrier: object
    done_barrier: object
    # segment names (data segments are None in out-of-core mode)
    p_name: str = ""
    q_name: str = ""
    ctl_name: str = ""
    counts_name: str = ""
    stage_name: str = ""
    phases_name: str = ""
    rows_name: str | None = None
    cols_name: str | None = None
    vals_name: str | None = None
    plan_name: str | None = None
    # geometry
    m: int = 0
    n: int = 0
    k: int = 0
    nnz: int = 0
    n_waves: int = 0
    width: int = 0
    col_lo: int = 0
    col_hi: int = 0
    # out-of-core
    store_root: str | None = None
    blocks: list = field(default_factory=list)
    prefetch_depth: int = 2
    max_wave: int = 256
    #: resolved kernel-backend name (the parent resolves/verifies through
    #: the registry and ships the name; workers re-resolve by exact name)
    backend: str = "numpy"
    shuffle_each_epoch: bool = True
    seed_seq: object = None
    # telemetry relay: when the parent traces, each worker spools spans to
    # its own JSONL file against the parent tracer's clock origin
    spool_path: str | None = None
    trace_origin: float = 0.0
    # sanitizer: mode travels by value (contextvars do not cross the
    # process boundary); workers spool shadow access logs and typed error
    # detail into ``san_spool`` for the parent to merge after join
    sanitize: str = "off"
    san_spool: str | None = None
    #: parent's perf_counter right before Process.start() — the zero point
    #: of this worker's wall/spawn accounting (perf_counter is
    #: CLOCK_MONOTONIC, comparable across processes on one host)
    dispatched_at: float = 0.0


def _worker_main(cfg: _WorkerConfig) -> None:
    """Worker process entry point: attach, then serve epochs until told to exit."""
    t_entry = time.perf_counter()
    born = cfg.dispatched_at or t_entry
    telemetry = None
    if cfg.spool_path is not None:
        telemetry = WorkerTelemetry(
            cfg.wid, origin=cfg.trace_origin, spool_path=cfg.spool_path
        )
    # the sanitizer mode ships by value and each worker builds its own
    # instance: shadow access logs spool to ``cfg.san_spool`` and typed
    # errors travel back as JSON (contextvars never cross the fork/spawn)
    san = sanitizer_from_mode(cfg.sanitize)
    shms = []

    def attach(name):
        shm = _attach(name)
        shms.append(shm)
        return shm

    try:
        model = FactorModel.from_buffers(
            attach(cfg.p_name).buf, attach(cfg.q_name).buf, cfg.m, cfg.n, cfg.k
        )
        ctl = np.ndarray((_CTL_SLOTS,), dtype=np.float64,  # lint: fp64-accumulator -- control scalars, not model math
                         buffer=attach(cfg.ctl_name).buf)
        counts = np.ndarray((cfg.n_procs,), dtype=np.int64,
                            buffer=attach(cfg.counts_name).buf)
        stage = np.ndarray((cfg.n_procs, _STAGE_FIELDS), dtype=np.float64,  # lint: fp64-accumulator -- wall-clock/byte accumulators
                           buffer=attach(cfg.stage_name).buf)
        phases = np.ndarray((cfg.n_procs, _PHASE_FIELDS), dtype=np.float64,  # lint: fp64-accumulator -- wall-clock accumulators
                            buffer=attach(cfg.phases_name).buf)
        from repro.backends import get_backend

        ws = WaveWorkspace()
        backend = get_backend(cfg.backend)
        wave_update = backend.bind(ws)
        serial_update = backend.serial_update
        wrng = np.random.default_rng(cfg.seed_seq)
        out_of_core = cfg.store_root is not None
        if out_of_core:
            store = BlockStore.open(cfg.store_root)
            blocks = [tuple(b) for b in cfg.blocks]
        else:
            rows = np.ndarray((cfg.nnz,), dtype=np.int32,
                              buffer=attach(cfg.rows_name).buf)
            cols = np.ndarray((cfg.nnz,), dtype=np.int32,
                              buffer=attach(cfg.cols_name).buf)
            vals = np.ndarray((cfg.nnz,), dtype=np.float32,
                              buffer=attach(cfg.vals_name).buf)
            matrix = np.ndarray((cfg.n_waves, cfg.width), dtype=np.int64,
                                buffer=attach(cfg.plan_name).buf)
            lengths = np.ndarray((cfg.n_waves,), dtype=np.int64,
                                 buffer=attach(cfg.plan_name).buf,
                                 offset=cfg.n_waves * cfg.width * 8)
            plan_view = _ShardPlanView(matrix[:, cfg.col_lo:cfg.col_hi])
            shard_lengths = np.clip(
                lengths - cfg.col_lo, 0, cfg.col_hi - cfg.col_lo
            ).tolist()
        setup_done = time.perf_counter()
        phases[cfg.wid, _PH_SPAWN] = setup_done - born
        if telemetry is not None:
            telemetry.add_span(
                "spawn/attach", born - cfg.trace_origin, setup_done - born,
                cat="spawn",
            )
        with activate_sanitizer(san):
            while True:
                t_b0 = time.perf_counter()
                cfg.start_barrier.wait()
                t_b1 = time.perf_counter()
                if ctl[_CMD] == _CMD_EXIT:
                    return
                epoch = int(ctl[_EPOCH])
                phases[cfg.wid, _PH_EPOCH_BARRIER] = t_b1 - t_b0
                phases[cfg.wid, _PH_BARRIER] += t_b1 - t_b0
                if telemetry is not None:
                    telemetry.add_span(
                        "barrier.dispatch", t_b0 - cfg.trace_origin,
                        t_b1 - t_b0, cat="barrier", args={"epoch": epoch},
                    )
                lr = np.float32(ctl[_LR])
                lam_p = np.float32(ctl[_LAM_P])
                lam_q = np.float32(ctl[_LAM_Q])
                try:
                    t_c0 = time.perf_counter()
                    if out_of_core:
                        order = blocks
                        if cfg.shuffle_each_epoch and len(blocks) > 1:
                            perm = wrng.permutation(len(blocks))
                            order = [blocks[i] for i in perm]
                        prefetcher = BlockPrefetcher(
                            store, order, depth=cfg.prefetch_depth,
                            telemetry=telemetry,
                        )
                        n = _run_blocks(ws, serial_update, prefetcher,
                                        model.p, model.q,
                                        lr, lam_p, lam_q, cfg.max_wave,
                                        san=san, wid=cfg.wid, epoch=epoch)
                        compute_s = time.perf_counter() - t_c0
                        s = prefetcher.stats
                        stage[cfg.wid, 0] += s.blocks_loaded
                        stage[cfg.wid, 1] += s.bytes_loaded
                        stage[cfg.wid, 2] += s.load_seconds
                        stage[cfg.wid, 3] += s.wait_seconds
                        # the block loop's wall time splits into prefetch
                        # stall (consumer blocked on the loader) and compute
                        phases[cfg.wid, _PH_PREFETCH] += s.wait_seconds
                        phases[cfg.wid, _PH_COMPUTE] += max(
                            0.0, compute_s - s.wait_seconds
                        )
                    else:
                        plan_view.version += 1
                        wu = wave_update
                        if san is not None:
                            # fresh wrapper per epoch: the shadow log keys
                            # every wave to (worker, epoch, wave)
                            wu = san.wave_kernel(
                                wave_update, wid=cfg.wid, epoch=epoch
                            )
                        n = _run_shard(ws, wu, plan_view,
                                       model.p, model.q,
                                       rows, cols, vals, shard_lengths,
                                       lr, lam_p, lam_q)
                        compute_s = time.perf_counter() - t_c0
                        phases[cfg.wid, _PH_COMPUTE] += compute_s
                    counts[cfg.wid] = n
                    if telemetry is not None:
                        telemetry.add_span(
                            f"epoch {epoch} compute",
                            t_c0 - cfg.trace_origin,
                            compute_s, cat="compute",
                            args={"epoch": epoch, "updates": int(n)},
                        )
                except BaseException as exc:
                    ctl[_ERR] = float(cfg.wid + 1)
                    if (
                        cfg.san_spool is not None
                        and isinstance(exc, SanitizerError)
                    ):
                        # ship the typed detail; the parent re-raises a
                        # SanitizerError with these coordinates instead of
                        # a generic "worker failed"
                        try:
                            (
                                Path(cfg.san_spool)
                                / f"error_w{cfg.wid:04d}.json"
                            ).write_text(json.dumps(exc.as_dict()))
                        except OSError:  # pragma: no cover - disk gone
                            pass
                    import traceback

                    traceback.print_exc()
                t_d0 = time.perf_counter()
                cfg.done_barrier.wait()
                t_d1 = time.perf_counter()
                # written after the parent is released — the parent must
                # join (``_SharedCluster.shutdown``) before reading phase
                # totals, or it races these writes and sees compute > wall
                # (completion-barrier wait: idle until the slowest sibling)
                phases[cfg.wid, _PH_BARRIER] += t_d1 - t_d0
                phases[cfg.wid, _PH_WALL] = t_d1 - born
                if telemetry is not None:
                    telemetry.add_span(
                        "barrier.complete", t_d0 - cfg.trace_origin,
                        t_d1 - t_d0, cat="barrier", args={"epoch": epoch},
                    )
                    telemetry.flush()
    finally:
        if (
            san is not None
            and san.check_races
            and cfg.san_spool is not None
        ):
            # torn writes tolerated: the parent's load_spools skips any
            # file a dying worker left incomplete
            dump_log(
                Path(cfg.san_spool) / f"san_{cfg.wid:04d}.npz", san.race_log
            )
        if telemetry is not None:
            telemetry.flush()
        for shm in shms:
            shm.close()


class _SharedCluster:
    """Owns the shared segments and the persistent worker pool."""

    def __init__(self, n_procs: int, start_method: str | None) -> None:
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else None
            )
        self.ctx = mp.get_context(start_method)
        self.n_procs = n_procs
        self._segments: list[shared_memory.SharedMemory] = []
        self._procs: list = []
        self.shm_bytes = 0
        self.barrier_wait_seconds = 0.0
        self.model: FactorModel | None = None
        self.plan_matrix = None
        self.ctl = self.counts = self.stage = None
        self.phases = None
        #: sanitizer spool directory (race logs + typed worker errors)
        self.san_spool: str | None = None

    # ------------------------------------------------------------------
    def _alloc(self, nbytes: int) -> shared_memory.SharedMemory:
        # track_shm is a no-op without an ambient sanitizer; with one, the
        # lifecycle ledger audits this create against close()+unlink()
        shm = track_shm(
            shared_memory.SharedMemory(create=True, size=max(int(nbytes), 1))
        )
        self._segments.append(shm)
        self.shm_bytes += shm.size
        return shm

    def _shared_array(self, shape, dtype) -> tuple[np.ndarray, str]:
        shm = self._alloc(int(np.prod(shape)) * np.dtype(dtype).itemsize)
        return np.ndarray(shape, dtype=dtype, buffer=shm.buf), shm.name

    # ------------------------------------------------------------------
    def start(
        self,
        model: FactorModel,
        plan: EpochPlan | None,
        ratings: RatingMatrix | None,
        store: BlockStore | None,
        prefetch_depth: int,
        max_wave: int,
        shuffle_each_epoch: bool,
        seed: int,
        backend: str = "numpy",
        relay: TraceRelay | None = None,
        trace_origin: float = 0.0,
        sanitize: str = "off",
        san_spool: str | None = None,
    ) -> FactorModel:
        """Copy the model (and data, in-memory mode) into shared segments
        and launch the worker pool. Returns the shared-memory-backed model
        the parent should use from now on.

        ``relay`` (plus the parent tracer's ``trace_origin``) switches on
        per-worker span spooling; phase accounting in the shared ``phases``
        array is always on (a handful of ``perf_counter`` calls per epoch).
        ``sanitize``/``san_spool`` arm the in-worker sanitizer the same way
        the relay arms span spooling.
        """
        self.san_spool = san_spool
        m, n, k = model.m, model.n, model.k
        p_sh, p_name = self._shared_array((m, k), np.float32)
        q_sh, q_name = self._shared_array((n, k), np.float32)
        np.copyto(p_sh, model.p)
        np.copyto(q_sh, model.q)
        self.model = FactorModel(p=p_sh, q=q_sh)
        self.ctl, ctl_name = self._shared_array((_CTL_SLOTS,), np.float64)
        self.ctl[:] = 0.0
        self.counts, counts_name = self._shared_array((self.n_procs,), np.int64)
        self.counts[:] = 0
        self.stage, stage_name = self._shared_array(
            (self.n_procs, _STAGE_FIELDS), np.float64
        )
        self.stage[:] = 0.0
        self.phases, phases_name = self._shared_array(
            (self.n_procs, _PHASE_FIELDS), np.float64
        )
        self.phases[:] = 0.0
        self.start_barrier = self.ctx.Barrier(self.n_procs + 1)
        self.done_barrier = self.ctx.Barrier(self.n_procs + 1)

        base = dict(
            n_procs=self.n_procs,
            start_barrier=self.start_barrier,
            done_barrier=self.done_barrier,
            p_name=p_name,
            q_name=q_name,
            ctl_name=ctl_name,
            counts_name=counts_name,
            stage_name=stage_name,
            phases_name=phases_name,
            trace_origin=trace_origin,
            m=m,
            n=n,
            k=k,
            prefetch_depth=prefetch_depth,
            max_wave=max_wave,
            backend=backend,
            shuffle_each_epoch=shuffle_each_epoch,
            sanitize=sanitize,
            san_spool=san_spool,
        )
        if store is not None:
            assignment = store.assign(self.n_procs)
            base.update(store_root=str(store.root))
        else:
            rows_sh, rows_name = self._shared_array((ratings.nnz,), np.int32)
            cols_sh, cols_name = self._shared_array((ratings.nnz,), np.int32)
            vals_sh, vals_name = self._shared_array((ratings.nnz,), np.float32)
            np.copyto(rows_sh, ratings.rows)
            np.copyto(cols_sh, ratings.cols)
            np.copyto(vals_sh, ratings.vals)
            # plan segment: the (n_waves, width) matrix followed by lengths
            plan_shm = self._alloc((plan.n_waves * plan.width + plan.n_waves) * 8)
            self.plan_matrix = np.ndarray(
                (plan.n_waves, plan.width), dtype=np.int64, buffer=plan_shm.buf
            )
            lengths_sh = np.ndarray(
                (plan.n_waves,), dtype=np.int64, buffer=plan_shm.buf,
                offset=plan.n_waves * plan.width * 8,
            )
            np.copyto(lengths_sh, plan.lengths)
            shards = plan.shard(self.n_procs)
            base.update(
                rows_name=rows_name,
                cols_name=cols_name,
                vals_name=vals_name,
                plan_name=plan_shm.name,
                nnz=ratings.nnz,
                n_waves=plan.n_waves,
                width=plan.width,
            )
        worker_seeds = np.random.SeedSequence(seed).spawn(self.n_procs)
        for wid in range(self.n_procs):
            cfg = _WorkerConfig(wid=wid, seed_seq=worker_seeds[wid], **base)
            if store is not None:
                cfg.blocks = assignment[wid]
            else:
                shard = shards[wid]
                cfg.col_lo, cfg.col_hi = shard.col_lo, shard.col_hi
            if relay is not None:
                cfg.spool_path = str(relay.spool_path(wid))
            proc = self.ctx.Process(
                target=_worker_main, args=(cfg,), name=f"hogwild-proc-{wid}",
                daemon=True,
            )
            cfg.dispatched_at = time.perf_counter()
            proc.start()
            self._procs.append(proc)
        return self.model

    # ------------------------------------------------------------------
    def run_epoch(self, plan: EpochPlan | None, lr: float,
                  lam_p: float, lam_q: float, epoch: int = 0) -> int:
        """Dispatch one epoch to the pool and wait for completion."""
        if plan is not None:
            np.copyto(self.plan_matrix, plan.matrix)
        self.ctl[_CMD] = _CMD_RUN
        self.ctl[_LR] = float(lr)
        self.ctl[_LAM_P] = float(lam_p)
        self.ctl[_LAM_Q] = float(lam_q)
        self.ctl[_ERR] = 0.0
        self.ctl[_EPOCH] = float(epoch)
        t0 = time.perf_counter()
        self._wait_barrier(self.start_barrier, "dispatch")
        self.barrier_wait_seconds += time.perf_counter() - t0
        self._wait_barrier(self.done_barrier, "completion")
        if self.ctl[_ERR]:
            wid = int(self.ctl[_ERR]) - 1
            typed = self._worker_error(wid)
            if typed is not None:
                raise typed
            raise RuntimeError(
                f"worker {wid} failed during the epoch "
                "(traceback on its stderr)"
            )
        return int(self.counts.sum())

    def _wait_barrier(self, barrier, stage: str) -> None:
        """Wait on ``barrier`` while watching the pool for dead workers.

        ``mp.Barrier.wait(timeout)`` *breaks* the barrier on timeout, so
        the parent cannot poll-wait on the barrier itself. Instead a
        daemon thread performs the real wait while this thread polls
        ``Process.is_alive``: a worker killed mid-epoch (segfault, OOM
        reaper) surfaces within ~50 ms as a diagnostic naming the worker,
        pid, exit code, and barrier stage — not as a ten-minute hang
        ending in an opaque ``BrokenBarrierError``.
        """
        done = threading.Event()
        failures: list[BaseException] = []

        def waiter() -> None:
            try:
                barrier.wait(timeout=_EPOCH_TIMEOUT_S)
            except BaseException as exc:
                failures.append(exc)
            finally:
                done.set()

        thread = threading.Thread(
            target=waiter, daemon=True, name=f"barrier-wait-{stage}"
        )
        thread.start()
        while not done.wait(0.05):
            dead = [
                (wid, proc)
                for wid, proc in enumerate(self._procs)
                if not proc.is_alive()
            ]
            if dead:
                # release everyone still parked (the waiter thread and any
                # surviving workers see BrokenBarrierError and unwind)
                barrier.abort()
                done.wait(5.0)
                wid, proc = dead[0]
                raise RuntimeError(
                    f"worker {wid} (pid {proc.pid}, exit code "
                    f"{proc.exitcode}) died during the '{stage}' barrier; "
                    "aborted the barrier to release the remaining workers"
                )
        if failures:
            raise RuntimeError(
                f"'{stage}' barrier broke without completing "
                f"(timeout {_EPOCH_TIMEOUT_S:.0f}s): {failures[0]!r}"
            ) from failures[0]

    def _worker_error(self, wid: int) -> SanitizerError | None:
        """Reconstruct a worker's typed sanitizer failure, if it left one."""
        if self.san_spool is None:
            return None
        path = Path(self.san_spool) / f"error_w{wid:04d}.json"
        try:
            state = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return SanitizerError(
            str(state.get("kind", "unknown")),
            str(state.get("message", "")),
            worker=state.get("worker"),
            epoch=state.get("epoch"),
            wave=state.get("wave"),
        )

    def worker_updates(self) -> list[int]:
        return [int(c) for c in self.counts]

    def epoch_barrier_waits(self) -> list[float]:
        """Per-worker dispatch-barrier wait of the epoch that just ran.

        Safe between barriers: workers write the slot before computing and
        the parent reads after the completion barrier released."""
        return [float(w) for w in self.phases[:, _PH_EPOCH_BARRIER]]

    def phase_totals(self) -> np.ndarray:
        """Copy of the per-worker phase accumulators (rows: worker id,
        columns: the ``_PH_*`` fields)."""
        if self.phases is None:
            return np.zeros((self.n_procs, _PHASE_FIELDS))
        return np.array(self.phases)

    def stage_stats(self) -> PrefetchStats:
        totals = self.stage.sum(axis=0)
        return PrefetchStats(
            blocks_loaded=int(totals[0]),
            bytes_loaded=int(totals[1]),
            load_seconds=float(totals[2]),
            wait_seconds=float(totals[3]),
        )

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Release and join the worker pool (idempotent), leaving every
        shared segment alive.

        Splitting this out of :meth:`close` lets the parent join the
        workers *before* reading the ``phases`` array: each worker writes
        its final wall/barrier slots after the done barrier releases the
        parent, so reading phase totals pre-join races those writes and
        produces reports where per-worker compute exceeds wall (the bug in
        the shipped BENCH_parallel.json).
        """
        if not self._procs:
            return
        try:
            if self.ctl is not None:
                self.ctl[_CMD] = _CMD_EXIT
            if any(not proc.is_alive() for proc in self._procs):
                # a dead worker can never reach the barrier — abort it so
                # any survivors unwind instead of stalling the full timeout
                self.start_barrier.abort()
            else:
                self.start_barrier.wait(timeout=30.0)
        except Exception:  # pragma: no cover - pool already dead
            pass
        for proc in self._procs:
            proc.join(timeout=30.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5.0)
        self._procs = []

    def close(self) -> FactorModel | None:
        """Shut the pool down (if still up) and free every segment.

        Returns a private (heap-backed) copy of the model, made before the
        shared segments are unlinked — the shared views die with them.
        """
        model = None
        self.shutdown()
        if getattr(self, "model", None) is not None:
            model = self.model.copy()
            self.model = None
        self.plan_matrix = None
        self.ctl = self.counts = self.stage = None
        self.phases = None
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []
        return model


class ProcessHogwild:
    """Hogwild! SGD executor over ``n_procs`` OS processes.

    Parameters
    ----------
    k, lam, schedule, seed, scale_factor:
        As :class:`repro.core.cumf.CuMFSGD` / :class:`ThreadedHogwild`.
    n_procs:
        Worker processes. Each owns ``workers / n_procs`` contiguous lanes
        of the compiled plan (in-memory mode) or an nnz-balanced set of
        grid blocks (out-of-core mode).
    workers, f:
        The batch-Hogwild! geometry of the *shared* epoch plan (``s`` total
        concurrent lanes, ``f`` consecutive samples per chunk — paper
        default 256). The plan and its per-epoch re-permutation match
        :class:`~repro.core.hogwild.BatchHogwild` draw for draw, so
        ``n_procs=1`` reproduces the serial compiled-plan path bit for bit.
    store:
        A :class:`~repro.data.blockstore.BlockStore` switches the executor
        to out-of-core mode: ratings stream from disk through per-worker
        double-buffered prefetchers instead of living in shared memory.
    prefetch_depth:
        Staging buffers per worker in out-of-core mode (2 = double
        buffering, the paper's two-resident-blocks pipeline).
    start_method:
        ``multiprocessing`` start method; default prefers ``fork`` (cheap
        worker launch) and falls back to the platform default.
    profile:
        Controls per-worker span spooling (the trace relay). ``None``
        (default) spools whenever an ambient tracer is active
        (:func:`repro.obs.context.activate`); ``False`` never spools.
        Phase accounting — the :class:`~repro.obs.profiler.StallReport` on
        :attr:`stall_report` after :meth:`fit` — is always on; it costs a
        handful of clock reads per worker per epoch.
    backend:
        Kernel backend for the per-worker hot loops — a name, a
        :class:`~repro.backends.base.BackendType`, or an instance. ``None``
        (default) resolves to the NumPy reference (the historical path, bit
        for bit at ``n_procs=1``).

    Non-deterministic for ``n_procs > 1`` (real cross-process races); use
    the deterministic simulators for reproducibility-sensitive experiments.
    """

    def __init__(
        self,
        k: int = 32,
        n_procs: int = 4,
        lam: float = 0.05,
        schedule: LearningRateSchedule | None = None,
        seed: int = 0,
        workers: int = 128,
        f: int = 256,
        scale_factor: float = 1.0,
        shuffle_each_epoch: bool = True,
        store: BlockStore | None = None,
        prefetch_depth: int = 2,
        start_method: str | None = None,
        profile: bool | None = None,
        backend: object | None = None,
    ) -> None:
        if min(k, n_procs, workers, f) <= 0:
            raise ValueError("k, n_procs, workers, f must be positive")
        if n_procs > workers and store is None:
            raise ValueError(
                f"n_procs={n_procs} exceeds the plan's {workers} worker lanes"
            )
        self.k = k
        self.n_procs = n_procs
        self.lam = lam
        self.schedule = schedule or NomadSchedule()
        self.seed = seed
        self.workers = workers
        self.f = f
        self.scale_factor = scale_factor
        self.shuffle_each_epoch = shuffle_each_epoch
        self.store = store
        self.prefetch_depth = prefetch_depth
        self.start_method = start_method
        self.profile = profile
        #: kernel backend (name / BackendType / instance; None = numpy
        #: reference). The parent resolves and verifies it once through the
        #: registry and ships only the resolved *name* to workers, which
        #: re-resolve by exact name — so a missing accelerator warns once
        #: in the parent instead of once per worker.
        self.backend = backend
        self.model: FactorModel | None = None
        self.history: TrainHistory | None = None
        #: updates each worker performed in the last epoch
        self.worker_updates: list[int] = []
        self.stage_stats: PrefetchStats | None = None
        self.barrier_wait_seconds = 0.0
        #: phase attribution of the last :meth:`fit` (set even on error
        #: paths once workers have run)
        self.stall_report: StallReport | None = None
        #: per-epoch, per-worker dispatch-barrier waits of the last fit
        self._barrier_waits: list[list[float]] = []

    # ------------------------------------------------------------------
    def fit(
        self,
        train: RatingMatrix | None,
        epochs: int = 10,
        test: RatingMatrix | None = None,
        target_rmse: float | None = None,
        hooks: TrainerHooks | None = None,
    ) -> TrainHistory:
        """Train for ``epochs`` passes. ``train`` may be ``None`` in
        out-of-core mode (shape and samples come from the store)."""
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if self.store is None:
            if train is None:
                raise ValueError("train is required without a BlockStore")
            m, n, nnz = train.n_rows, train.n_cols, train.nnz
        else:
            m, n, nnz = self.store.n_rows, self.store.n_cols, self.store.nnz
            if train is not None and train.shape != self.store.shape:
                raise ValueError(
                    f"train shape {train.shape} disagrees with store "
                    f"shape {self.store.shape}"
                )
        if nnz == 0:
            raise ValueError("cannot train on an empty rating matrix")
        hooks = resolve_hooks(hooks)
        rng = np.random.default_rng(self.seed)
        init = FactorModel.initialize(
            m, n, self.k, seed=self.seed, scale_factor=self.scale_factor
        )
        plan = None
        if self.store is None:
            order = rng.permutation(nnz).astype(np.int64)
            plan = EpochPlan(order, self.workers, self.f)
        cluster = _SharedCluster(self.n_procs, self.start_method)
        history = TrainHistory()
        total_updates = [0] * self.n_procs
        epochs_run = 0
        self._barrier_waits = []
        self.stall_report = None
        tracer = active_tracer()
        relay = None
        if tracer is not None and self.profile is not False:
            import tempfile

            relay = TraceRelay(tempfile.mkdtemp(prefix="cumf-relay-"))
        san = active_sanitizer()
        san_dir = None
        if san is not None:
            import tempfile

            # workers spool shadow access logs + typed errors here; merged
            # after the pool joins, removed before fit returns
            san_dir = tempfile.mkdtemp(prefix="cumf-san-")
        from repro.backends import get_backend

        # resolve (and verify) in the parent; ship only the name so workers
        # re-resolve by exact name without re-triggering fallback warnings
        backend_name = get_backend(self.backend).name.value
        try:
            model = cluster.start(
                init, plan, train, self.store, self.prefetch_depth,
                self.f, self.shuffle_each_epoch, self.seed,
                backend=backend_name,
                relay=relay,
                trace_origin=tracer.origin if tracer is not None else 0.0,
                sanitize=san.mode if san is not None else "off",
                san_spool=san_dir,
            )
            for epoch in range(epochs):
                if epoch and plan is not None and self.shuffle_each_epoch:
                    plan.repermute(rng)
                lr = self.schedule(epoch)
                t0 = time.perf_counter()
                n_upd = cluster.run_epoch(
                    plan, lr, self.lam, self.lam, epoch=epoch + 1
                )
                seconds = time.perf_counter() - t0
                epochs_run += 1
                if san is not None:
                    # deterministic sweep over the *shared* factor views —
                    # an injected NaN is caught the epoch it lands,
                    # regardless of worker-side sampling
                    san.epoch_end(model.p, model.q, epoch=epoch + 1)
                self.worker_updates = cluster.worker_updates()
                self._barrier_waits.append(cluster.epoch_barrier_waits())
                for wid, c in enumerate(self.worker_updates):
                    total_updates[wid] += c
                t1 = time.perf_counter()
                te = None
                if test is not None:
                    p, q = model.as_float32()
                    te = rmse(p, q, test)
                eval_seconds = time.perf_counter() - t1
                history.record(epoch + 1, lr, n_upd, None, te)
                if hooks.active:
                    hooks.on_epoch(
                        EpochEvent(
                            epoch=epoch + 1, lr=lr, n_updates=n_upd,
                            test_rmse=te, seconds=seconds,
                            eval_seconds=eval_seconds, nnz=nnz, k=self.k,
                            scheme="process-hogwild",
                            extra={
                                "n_procs": self.n_procs,
                                "worker_updates": list(self.worker_updates),
                                "out_of_core": self.store is not None,
                                "barrier_wait_seconds": float(
                                    sum(self._barrier_waits[-1])
                                ),
                            },
                        )
                    )
                if target_rmse is not None and te is not None and te <= target_rmse:
                    break
        finally:
            # join the workers FIRST: their final wall/barrier phase slots
            # are written after the done barrier releases the parent, so
            # reading phase totals before the join races those writes and
            # yields per-worker compute > wall (satellite fix; the
            # invariant is now enforced by StallReport.validate_dict)
            cluster.shutdown()
            if san_dir is not None:
                # workers are joined — their spools are complete (or torn,
                # which load_spools tolerates). Merge, then drop the dir.
                if san is not None and san.check_races:
                    load_spools(san_dir, san.race_log)
                import shutil

                shutil.rmtree(san_dir, ignore_errors=True)
            self.barrier_wait_seconds = cluster.barrier_wait_seconds
            if self.store is not None:
                self.stage_stats = cluster.stage_stats()
            phase_totals = cluster.phase_totals()
            shm_bytes = cluster.shm_bytes
            self.model = cluster.close()
            if epochs_run:
                self.stall_report = self._build_stall_report(phase_totals)
            if relay is not None:
                # workers have flushed and exited (close() joins them);
                # replay their spools onto the parent's timeline
                relay.merge_into(tracer, label="proc")
                relay.cleanup()
        self.history = history
        self._publish(total_updates, epochs_run, shm_bytes)
        return history

    # ------------------------------------------------------------------
    def _build_stall_report(self, totals: np.ndarray) -> StallReport:
        """Fold the shared phase accumulators into a :class:`StallReport`."""
        workers = [
            WorkerPhases(
                wid=wid,
                wall_seconds=float(totals[wid, _PH_WALL]),
                seconds={
                    "spawn": float(totals[wid, _PH_SPAWN]),
                    "barrier": float(totals[wid, _PH_BARRIER]),
                    "compute": float(totals[wid, _PH_COMPUTE]),
                    "prefetch": float(totals[wid, _PH_PREFETCH]),
                },
            )
            for wid in range(self.n_procs)
        ]
        executor = "procs_ooc" if self.store is not None else "procs"
        return StallReport(executor, workers)

    def _publish(self, total_updates: list[int], epochs_run: int,
                 shm_bytes: int) -> None:
        """Accumulate ``repro.proc.*`` (and staging) metrics into the
        ambient registry; no-op when none is active."""
        from repro.obs.context import active_registry
        from repro.obs.registry import M

        registry = active_registry()
        if registry is None:
            return
        registry.gauge(M.PROC_WORKERS).set(self.n_procs)
        registry.gauge(M.PROC_SHM_BYTES).set(shm_bytes)
        registry.counter(M.PROC_EPOCHS).inc(epochs_run)
        # one histogram per worker id: stragglers hide in an aggregate, so
        # each worker's per-epoch dispatch-barrier wait lands in its own
        # labeled family member
        for waits in self._barrier_waits:
            for wid, wait in enumerate(waits):
                registry.histogram(
                    M.PROC_BARRIER_WAIT_SECONDS, BARRIER_WAIT_BUCKETS,
                    {"worker": wid},
                ).observe(wait)
        for wid, count in enumerate(total_updates):
            registry.counter(
                M.PROC_WORKER_UPDATES, {"worker": wid}
            ).inc(count)
        if self.stall_report is not None:
            self.stall_report.publish(registry)
        if self.stage_stats is not None:
            self.stage_stats.publish()

    def score(self, ratings: RatingMatrix) -> float:
        if self.model is None:
            raise RuntimeError("fit() first")
        p, q = self.model.as_float32()
        return rmse(p, q, ratings)

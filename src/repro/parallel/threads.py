"""Lock-free Hogwild! on real OS threads.

Each worker thread owns a static shard of the (pre-shuffled) sample order —
the batch-Hogwild! layout of §5.1, with each shard a run of consecutive
chunks — and applies SGD updates to the *shared* P and Q arrays with no
locking whatsoever. Races happen for real: concurrent threads may read
stale vectors and overwrite each other's rows, which is exactly what the
paper (and Hogwild! [44]) argue is tolerable while ``s ≪ min(m, n)``.

Hot-path structure (mirroring the serial executor): per epoch each thread
compiles its shard once into a :class:`~repro.sched.plan.SerialPlan` and
replays the conflict-free segments through its own private
:class:`~repro.core.kernels.WaveWorkspace` — allocation-free inside
:func:`_replay_shard` (registered in lint ``HOT_FUNCTIONS``), with all heavy
lifting inside NumPy, which releases the GIL for true multi-core execution.
Segment replay is numerically identical to a per-sample serial pass over
the shard, so ``intra_batch`` (the segment-length cap) is a pure throughput
knob: any value yields bit-identical per-thread numerics.

``intra_batch`` defaults to 256 — the paper's ``f`` chunk size, chosen by
the Eq. 8 locality argument (any ``f ≫ cache_line/sample = 11`` behaves the
same statistically; 256 amortizes per-wave kernel overhead). Swept in
``benchmarks/bench_ablations.py``.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core.kernels import UPDATE_ERRSTATE, WaveWorkspace
from repro.core.lr_schedule import LearningRateSchedule, NomadSchedule
from repro.core.model import FactorModel
from repro.core.trainer import TrainHistory
from repro.data.container import RatingMatrix
from repro.metrics.rmse import rmse
from repro.obs.context import active_tracer
from repro.obs.hooks import (
    EpochEvent,
    KernelEvent,
    TrainerHooks,
    resolve_hooks,
)
from repro.obs.profiler import StallReport, WorkerPhases
from repro.obs.relay import THREAD_TID_BASE, WorkerTelemetry, merge_records
from repro.obs.tracer import WALL_PID
from repro.san.core import active_sanitizer
from repro.sched.plan import SerialPlan

__all__ = ["ThreadedHogwild"]

#: Shared names worker threads may legitimately mutate, audited by the
#: ``race-shared-write`` lint pass. ``counts``, ``waves``, ``phase_secs``,
#: ``walls``, and ``tele`` are write-disjoint (one slot per thread id) and
#: ``errors`` relies on list.append being atomic under the GIL. P and Q
#: races are the whole point of Hogwild! and happen inside the kernel.
SHARED_WRITE_OK = ("counts", "waves", "errors", "phase_secs", "walls", "tele")


def _replay_shard(wave_update, p, q, rows, cols, vals, starts, stops,
                  lr, lam_p, lam_q):
    """Replay one thread's compiled shard — the per-thread hot loop.

    ``starts``/``stops`` are the shard's :class:`SerialPlan` segments as
    plain lists; ``wave_update`` is the backend-bound per-wave kernel
    (:meth:`repro.backends.base.KernelBackend.bind` over the thread's
    private workspace — the numpy backend binds ``ws.wave_update``, so the
    default loop allocates nothing after the first wave). Registered in
    lint ``HOT_FUNCTIONS``.
    """
    with np.errstate(**UPDATE_ERRSTATE):
        for start, stop in zip(starts, stops):
            wave_update(
                p, q, rows[start:stop], cols[start:stop], vals[start:stop],
                lr, lam_p, lam_q,
            )


class ThreadedHogwild:
    """Hogwild! SGD executor over ``n_threads`` OS threads.

    Non-deterministic by nature (real races); use the deterministic
    simulators for reproducibility-sensitive experiments.

    ``hooks`` (on :meth:`fit`) receives one ``on_epoch`` event per epoch and
    one ``on_kernel`` event per thread shard; per-thread update totals
    accumulate into the ambient metrics registry under
    ``repro.thread.worker_updates``.
    """

    def __init__(
        self,
        k: int = 32,
        n_threads: int = 4,
        lam: float = 0.05,
        schedule: LearningRateSchedule | None = None,
        seed: int = 0,
        intra_batch: int = 256,
        scale_factor: float = 1.0,
        backend: object | None = None,
    ) -> None:
        if k <= 0 or n_threads <= 0 or intra_batch <= 0:
            raise ValueError("k, n_threads, intra_batch must be positive")
        self.k = k
        self.n_threads = n_threads
        self.lam = lam
        self.schedule = schedule or NomadSchedule()
        self.seed = seed
        self.intra_batch = intra_batch
        self.scale_factor = scale_factor
        #: kernel backend (name / BackendType / instance; None = numpy
        #: reference). Resolved once per fit through the backend registry.
        self.backend = backend
        self.model: FactorModel | None = None
        self.history: TrainHistory | None = None
        #: number of updates each thread performed in the last epoch
        self.thread_updates: list[int] = []
        self._workspaces: list[WaveWorkspace] = []
        self._bound_kernels: list = []
        #: phase attribution of the last :meth:`fit`
        self.stall_report: StallReport | None = None

    # ------------------------------------------------------------------
    def _epoch(
        self,
        model: FactorModel,
        train: RatingMatrix,
        order: np.ndarray,
        lr: float,
        hooks: TrainerHooks,
        epoch: int,
        tele: list[WorkerTelemetry] | None,
        phase_secs: list[dict],
        walls: list[float],
    ) -> int:
        shards = np.array_split(order, self.n_threads)
        counts = [0] * self.n_threads
        waves = [0] * self.n_threads
        errors: list[BaseException] = []
        lr32 = np.float32(lr)
        lam32 = np.float32(self.lam)
        san = active_sanitizer()
        if san is not None:
            # per-thread wrappers, rebuilt each epoch so the shadow access
            # log carries (worker, epoch, segment) coordinates; "segment"
            # kind: within a SerialPlan segment rows/cols are conflict-free
            kernels = [
                san.wave_kernel(k, wid=tid, epoch=epoch, kind="segment")
                for tid, k in enumerate(self._bound_kernels)
            ]
        else:
            kernels = self._bound_kernels
        dispatched = time.perf_counter()

        def work(tid: int, idx: np.ndarray) -> None:
            try:
                t_entry = time.perf_counter()
                # shard gather + plan compile happen once per epoch (cold);
                # the replay itself is the registered hot loop
                rows = train.rows[idx]
                cols = train.cols[idx]
                vals = train.vals[idx]
                plan = SerialPlan.compile(rows, cols, self.intra_batch)
                t_c0 = time.perf_counter()
                _replay_shard(
                    kernels[tid], model.p, model.q,
                    rows, cols, vals,
                    plan.starts.tolist(), plan.stops.tolist(),
                    lr32, lam32, lam32,
                )
                t_c1 = time.perf_counter()
                counts[tid] = plan.n_samples
                waves[tid] = plan.n_waves
                # write-disjoint phase accounting: spawn = dispatch-to-entry
                # latency, compute = kernel replay; gather/compile falls out
                # as the StallReport's replay residual
                phase_secs[tid]["spawn"] += t_entry - dispatched
                phase_secs[tid]["compute"] += t_c1 - t_c0
                walls[tid] += t_c1 - dispatched
                if tele is not None:
                    wt = tele[tid]
                    wt.add_span(
                        f"epoch {epoch} compile", t_entry - wt.origin,
                        t_c0 - t_entry, cat="replay", args={"epoch": epoch},
                    )
                    wt.add_span(
                        f"epoch {epoch} compute", t_c0 - wt.origin,
                        t_c1 - t_c0, cat="compute",
                        args={"epoch": epoch, "updates": plan.n_samples},
                    )
            except BaseException as exc:  # pragma: no cover - defensive
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(tid, shard), name=f"hogwild-{tid}")
            for tid, shard in enumerate(shards)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:  # pragma: no cover - defensive
            raise errors[0]
        if hooks.active:
            for tid in range(self.n_threads):
                hooks.on_kernel(
                    KernelEvent(
                        name="threads.shard", n_updates=counts[tid],
                        n_waves=waves[tid],
                    )
                )
        self.thread_updates = counts
        return sum(counts)

    # ------------------------------------------------------------------
    def fit(
        self,
        train: RatingMatrix,
        epochs: int = 10,
        test: RatingMatrix | None = None,
        target_rmse: float | None = None,
        hooks: TrainerHooks | None = None,
    ) -> TrainHistory:
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        hooks = resolve_hooks(hooks)
        rng = np.random.default_rng(self.seed)
        self.model = FactorModel.initialize(
            train.n_rows, train.n_cols, self.k, seed=self.seed, scale_factor=self.scale_factor
        )
        if len(self._workspaces) != self.n_threads:
            self._workspaces = [WaveWorkspace() for _ in range(self.n_threads)]
        from repro.backends import get_backend

        backend = get_backend(self.backend)
        # one bound kernel per thread: numpy binds the thread's own
        # workspace kernel (the historical path); accelerated backends
        # return their jitted launcher
        self._bound_kernels = [backend.bind(ws) for ws in self._workspaces]
        order = rng.permutation(train.nnz)
        history = TrainHistory()
        total_updates = [0] * self.n_threads
        tracer = active_tracer()
        tele = None
        if tracer is not None:
            tele = [
                WorkerTelemetry(tid, origin=tracer.origin)
                for tid in range(self.n_threads)
            ]
        phase_secs = [
            {"spawn": 0.0, "compute": 0.0} for _ in range(self.n_threads)
        ]
        walls = [0.0] * self.n_threads
        for epoch in range(epochs):
            rng.shuffle(order)
            lr = self.schedule(epoch)
            t0 = time.perf_counter()
            n = self._epoch(
                self.model, train, order, lr, hooks, epoch + 1,
                tele, phase_secs, walls,
            )
            seconds = time.perf_counter() - t0
            san = active_sanitizer()
            if san is not None:
                san.epoch_end(self.model.p, self.model.q, epoch=epoch + 1)
            for tid, c in enumerate(self.thread_updates):
                total_updates[tid] += c
            t1 = time.perf_counter()
            p, q = self.model.as_float32()
            te = rmse(p, q, test) if test is not None else None
            eval_seconds = time.perf_counter() - t1
            history.record(epoch + 1, lr, n, None, te)
            if hooks.active:
                hooks.on_epoch(
                    EpochEvent(
                        epoch=epoch + 1, lr=lr, n_updates=n, test_rmse=te,
                        seconds=seconds, eval_seconds=eval_seconds,
                        nnz=train.nnz, k=self.k, scheme="threaded-hogwild",
                        extra={
                            "n_threads": self.n_threads,
                            "thread_updates": list(self.thread_updates),
                        },
                    )
                )
            if target_rmse is not None and te is not None and te <= target_rmse:
                break
        self.history = history
        if tele is not None:
            merge_records(
                tracer,
                [rec for wt in tele for rec in wt.drain()],
                label="thread", pid=WALL_PID, tid_base=THREAD_TID_BASE,
            )
        self.stall_report = StallReport(
            "threads",
            [
                WorkerPhases(
                    wid=tid,
                    wall_seconds=walls[tid],
                    seconds=dict(phase_secs[tid]),
                )
                for tid in range(self.n_threads)
            ],
        )
        self._publish(total_updates)
        return history

    def _publish(self, total_updates: list[int]) -> None:
        """Accumulate ``repro.thread.*`` metrics into the ambient registry."""
        from repro.obs.context import active_registry
        from repro.obs.registry import M

        registry = active_registry()
        if registry is None:
            return
        registry.gauge(M.THREAD_WORKERS).set(self.n_threads)
        for tid, count in enumerate(total_updates):
            registry.counter(
                M.THREAD_WORKER_UPDATES, {"thread": tid}
            ).inc(count)
        if self.stall_report is not None:
            self.stall_report.publish(registry)

    def score(self, ratings: RatingMatrix) -> float:
        if self.model is None:
            raise RuntimeError("fit() first")
        p, q = self.model.as_float32()
        return rmse(p, q, ratings)

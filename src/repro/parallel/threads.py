"""Lock-free Hogwild! on real OS threads.

Each worker thread owns a static shard of the (pre-shuffled) sample order —
the batch-Hogwild! layout of §5.1, with each shard a run of consecutive
chunks — and applies SGD updates to the *shared* P and Q arrays with no
locking whatsoever. Races happen for real: concurrent threads may read
stale vectors and overwrite each other's rows, which is exactly what the
paper (and Hogwild! [44]) argue is tolerable while ``s ≪ min(m, n)``.

Within a thread, updates are executed through the serial-equivalent batched
kernel so the heavy lifting runs inside NumPy (which releases the GIL,
giving true multi-core execution).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.kernels import sgd_serial_update
from repro.core.lr_schedule import LearningRateSchedule, NomadSchedule
from repro.core.model import FactorModel
from repro.core.trainer import TrainHistory
from repro.data.container import RatingMatrix
from repro.metrics.rmse import rmse

__all__ = ["ThreadedHogwild"]

#: Shared names worker threads may legitimately mutate, audited by the
#: ``race-shared-write`` lint pass. ``counts`` is write-disjoint (one slot per
#: thread id) and ``errors`` relies on list.append being atomic under the GIL.
#: P and Q races are the whole point of Hogwild! and happen inside the kernel.
SHARED_WRITE_OK = ("counts", "errors")


class ThreadedHogwild:
    """Hogwild! SGD executor over ``n_threads`` OS threads.

    Non-deterministic by nature (real races); use the deterministic
    simulators for reproducibility-sensitive experiments.
    """

    def __init__(
        self,
        k: int = 32,
        n_threads: int = 4,
        lam: float = 0.05,
        schedule: LearningRateSchedule | None = None,
        seed: int = 0,
        intra_batch: int = 64,
        scale_factor: float = 1.0,
    ) -> None:
        if k <= 0 or n_threads <= 0 or intra_batch <= 0:
            raise ValueError("k, n_threads, intra_batch must be positive")
        self.k = k
        self.n_threads = n_threads
        self.lam = lam
        self.schedule = schedule or NomadSchedule()
        self.seed = seed
        self.intra_batch = intra_batch
        self.scale_factor = scale_factor
        self.model: FactorModel | None = None
        self.history: TrainHistory | None = None
        #: number of updates each thread performed in the last epoch
        self.thread_updates: list[int] = []

    # ------------------------------------------------------------------
    def _epoch(
        self,
        model: FactorModel,
        train: RatingMatrix,
        order: np.ndarray,
        lr: float,
    ) -> int:
        shards = np.array_split(order, self.n_threads)
        counts = [0] * self.n_threads
        errors: list[BaseException] = []

        def work(tid: int, idx: np.ndarray) -> None:
            try:
                rows, cols, vals = train.rows, train.cols, train.vals
                for lo in range(0, len(idx), self.intra_batch):
                    sel = idx[lo : lo + self.intra_batch]
                    sgd_serial_update(
                        model.p, model.q, rows[sel], cols[sel], vals[sel],
                        lr, self.lam,
                    )
                    counts[tid] += len(sel)
            except BaseException as exc:  # pragma: no cover - defensive
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(tid, shard), name=f"hogwild-{tid}")
            for tid, shard in enumerate(shards)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:  # pragma: no cover - defensive
            raise errors[0]
        self.thread_updates = counts
        return sum(counts)

    # ------------------------------------------------------------------
    def fit(
        self,
        train: RatingMatrix,
        epochs: int = 10,
        test: RatingMatrix | None = None,
        target_rmse: float | None = None,
    ) -> TrainHistory:
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        rng = np.random.default_rng(self.seed)
        self.model = FactorModel.initialize(
            train.n_rows, train.n_cols, self.k, seed=self.seed, scale_factor=self.scale_factor
        )
        order = rng.permutation(train.nnz)
        history = TrainHistory()
        for epoch in range(epochs):
            rng.shuffle(order)
            lr = self.schedule(epoch)
            n = self._epoch(self.model, train, order, lr)
            p, q = self.model.as_float32()
            te = rmse(p, q, test) if test is not None else None
            history.record(epoch + 1, lr, n, None, te)
            if target_rmse is not None and te is not None and te <= target_rmse:
                break
        self.history = history
        return history

    def score(self, ratings: RatingMatrix) -> float:
        if self.model is None:
            raise RuntimeError("fit() first")
        p, q = self.model.as_float32()
        return rmse(p, q, ratings)

"""Wavefront-update on real OS threads.

The deterministic :class:`repro.core.wavefront.WavefrontScheduler` simulates
wavefront execution in rounds. This executor runs the *actual* protocol:
each worker is an OS thread permanently bound to one grid row, walking its
private column permutation and spinning on the shared
:class:`~repro.sched.column_lock.ColumnLockArray` exactly as a GPU thread
block would on the device-memory lock array (Fig. 6).

Because granted blocks are always row- and column-disjoint, the concurrent
updates are conflict-free — so unlike the threaded Hogwild executor this one
is numerically race-free even under true parallelism (though the update
*order* remains nondeterministic).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core.kernels import sgd_serial_update
from repro.core.lr_schedule import LearningRateSchedule, NomadSchedule
from repro.core.model import FactorModel
from repro.core.trainer import TrainHistory
from repro.data.container import RatingMatrix
from repro.metrics.rmse import rmse
from repro.sched.column_lock import ColumnLockArray

__all__ = ["ThreadedWavefront"]

#: Shared names worker threads may legitimately mutate, audited by the
#: ``race-shared-write`` lint pass. ``counts`` is write-disjoint (one slot per
#: worker id), ``errors`` relies on list.append being atomic under the GIL,
#: and ``locks`` is the ColumnLockArray whose CAS discipline *is* the
#: synchronization protocol (Fig. 6).
SHARED_WRITE_OK = ("counts", "errors", "locks")


class ThreadedWavefront:
    """Wavefront-update executor with one OS thread per grid row."""

    def __init__(
        self,
        k: int = 32,
        workers: int = 4,
        col_blocks: int | None = None,
        lam: float = 0.05,
        schedule: LearningRateSchedule | None = None,
        seed: int = 0,
        spin_sleep: float = 1e-5,
        scale_factor: float = 1.0,
    ) -> None:
        if k <= 0 or workers <= 0:
            raise ValueError("k and workers must be positive")
        self.k = k
        self.workers = workers
        self.col_blocks = col_blocks or 2 * workers
        if self.col_blocks < 1:
            raise ValueError("col_blocks must be positive")
        self.lam = lam
        self.schedule = schedule or NomadSchedule()
        self.seed = seed
        self.spin_sleep = spin_sleep
        self.scale_factor = scale_factor
        self.model: FactorModel | None = None
        self.history: TrainHistory | None = None
        self.locks: ColumnLockArray | None = None

    # ------------------------------------------------------------------
    def _index_blocks(self, train: RatingMatrix) -> list[list[np.ndarray]]:
        s, c = self.workers, self.col_blocks
        row_edges = np.linspace(0, train.n_rows, s + 1).astype(np.int64)
        col_edges = np.linspace(0, train.n_cols, c + 1).astype(np.int64)
        bi = np.searchsorted(row_edges, train.rows, side="right") - 1
        bj = np.searchsorted(col_edges, train.cols, side="right") - 1
        flat = bi.astype(np.int64) * c + bj
        order = np.argsort(flat, kind="stable")
        bounds = np.searchsorted(flat[order], np.arange(s * c + 1))
        return [
            [order[bounds[i * c + j] : bounds[i * c + j + 1]] for j in range(c)]
            for i in range(s)
        ]

    def _epoch(
        self,
        model: FactorModel,
        train: RatingMatrix,
        index: list[list[np.ndarray]],
        lr: float,
        rng: np.random.Generator,
    ) -> int:
        locks = ColumnLockArray(self.col_blocks)
        self.locks = locks
        counts = [0] * self.workers
        errors: list[BaseException] = []
        sequences = [rng.permutation(self.col_blocks) for _ in range(self.workers)]
        rows, cols, vals = train.rows, train.cols, train.vals

        def work(wid: int) -> None:
            try:
                for col in sequences[wid]:
                    col = int(col)
                    # spin on the column lock, as the GPU worker does
                    while not locks.try_acquire(col, wid):
                        time.sleep(self.spin_sleep)
                    try:
                        idx = index[wid][col]
                        if len(idx):
                            sgd_serial_update(
                                model.p, model.q,
                                rows[idx], cols[idx], vals[idx],
                                lr, self.lam,
                            )
                            counts[wid] += len(idx)
                    finally:
                        locks.release(col, wid)
            except BaseException as exc:  # pragma: no cover - defensive
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(wid,), name=f"wavefront-{wid}")
            for wid in range(self.workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:  # pragma: no cover - defensive
            raise errors[0]
        if not locks.all_free():
            raise RuntimeError("column locks leaked after the epoch")
        return sum(counts)

    # ------------------------------------------------------------------
    def fit(
        self,
        train: RatingMatrix,
        epochs: int = 10,
        test: RatingMatrix | None = None,
        target_rmse: float | None = None,
    ) -> TrainHistory:
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        rng = np.random.default_rng(self.seed)
        self.model = FactorModel.initialize(
            train.n_rows, train.n_cols, self.k, seed=self.seed,
            scale_factor=self.scale_factor,
        )
        index = self._index_blocks(train)
        history = TrainHistory()
        for epoch in range(epochs):
            lr = self.schedule(epoch)
            n = self._epoch(self.model, train, index, lr, rng)
            p, q = self.model.as_float32()
            te = rmse(p, q, test) if test is not None else None
            history.record(epoch + 1, lr, n, None, te)
            if target_rmse is not None and te is not None and te <= target_rmse:
                break
        self.history = history
        return history

    def score(self, ratings: RatingMatrix) -> float:
        if self.model is None:
            raise RuntimeError("fit() first")
        p, q = self.model.as_float32()
        return rmse(p, q, ratings)

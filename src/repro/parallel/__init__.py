"""Real shared-memory parallel executors.

The rest of :mod:`repro.core` *simulates* concurrency deterministically
(waves with explicit race semantics). This package runs SGD on **actual
concurrency** — OS threads racing over shared NumPy arrays, and OS
processes racing over :mod:`multiprocessing.shared_memory` segments —
genuine Hogwild!, useful to validate that the simulated semantics match
reality and as multi-core executors in their own right (NumPy kernels
release the GIL; processes sidestep it entirely).
"""

from repro.parallel.procs import ProcessHogwild
from repro.parallel.threads import ThreadedHogwild
from repro.parallel.wavefront_threads import ThreadedWavefront

__all__ = ["ProcessHogwild", "ThreadedHogwild", "ThreadedWavefront"]

"""Real shared-memory parallel executors.

The rest of :mod:`repro.core` *simulates* concurrency deterministically
(waves with explicit race semantics). This package runs SGD on **actual
Python threads** racing over shared NumPy arrays — genuine Hogwild!, useful
to validate that the simulated semantics match reality and as a
multi-core executor in its own right (NumPy kernels release the GIL).
"""

from repro.parallel.threads import ThreadedHogwild
from repro.parallel.wavefront_threads import ThreadedWavefront

__all__ = ["ThreadedHogwild", "ThreadedWavefront"]

"""Throughput metrics: Eq. 7 (#Updates/s) and effective memory bandwidth.

The paper reports throughput as ``#Updates/s = (#Iterations x N) / elapsed``
and converts it to *effective memory bandwidth* (the data processed by the
compute units per second — footnote 2 notes this can exceed the theoretical
off-chip bandwidth thanks to caches).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.flops import bytes_per_update

__all__ = ["updates_per_second", "effective_bandwidth", "ThroughputRecord"]


def updates_per_second(iterations: int, nnz: int, elapsed_seconds: float) -> float:
    """Eq. 7 exactly: ``iterations * nnz / elapsed``."""
    if elapsed_seconds <= 0:
        raise ValueError(f"elapsed time must be positive, got {elapsed_seconds}")
    if iterations < 0 or nnz < 0:
        raise ValueError("iterations and nnz must be non-negative")
    return iterations * nnz / elapsed_seconds


def effective_bandwidth(
    updates_per_sec: float, k: int, feature_bytes: int = 4
) -> float:
    """Bytes/s processed by the compute units at the given update rate."""
    return updates_per_sec * bytes_per_update(k, feature_bytes=feature_bytes)


@dataclass(frozen=True)
class ThroughputRecord:
    """One measured/modelled throughput point (one bar in Figs. 5/7/10/11)."""

    solver: str
    dataset: str
    workers: int
    updates_per_sec: float
    k: int
    feature_bytes: int = 4

    @property
    def bandwidth_gbs(self) -> float:
        """Effective memory bandwidth in GB/s."""
        return effective_bandwidth(self.updates_per_sec, self.k, self.feature_bytes) / 1e9

    @property
    def musec(self) -> float:
        """Millions of updates per second (the y-axis unit of Fig. 5/7)."""
        return self.updates_per_sec / 1e6

    @classmethod
    def from_history(
        cls,
        history,
        nnz: int,
        *,
        elapsed_seconds: float | None = None,
        solver: str = "cuMF_SGD",
        dataset: str = "",
        workers: int = 0,
        k: int = 0,
        feature_bytes: int = 4,
    ) -> "ThroughputRecord":
        """Eq. 7 over a recorded :class:`repro.core.trainer.TrainHistory`.

        ``iterations`` is the number of recorded epochs; ``elapsed_seconds``
        defaults to the history's own per-epoch wall times (populated by the
        hook-instrumented trainer), so experiments no longer recompute
        ``iterations * nnz / elapsed`` inline.
        """
        iterations = len(history.epochs)
        if elapsed_seconds is None:
            elapsed_seconds = float(sum(history.epoch_seconds))
            if elapsed_seconds <= 0:
                raise ValueError(
                    "history carries no epoch wall times; pass elapsed_seconds "
                    "(epoch_seconds is only populated by the instrumented trainer)"
                )
        return cls(
            solver=solver,
            dataset=dataset,
            workers=workers,
            updates_per_sec=updates_per_second(iterations, nnz, elapsed_seconds),
            k=k,
            feature_bytes=feature_bytes,
        )

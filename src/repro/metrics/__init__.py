"""Metrics: the quantities the paper reports.

* test RMSE (the convergence indicator of every RMSE-vs-time figure),
* ``#Updates/s`` (Eq. 7, the throughput indicator of Figs. 5, 7, 10, 11),
* Flops/Byte (Eqs. 4-5, the §2.3 workload characterization),
* effective memory bandwidth (Figs. 2, 10, 11).
"""

from repro.metrics.flops import (
    FLOPS_PER_UPDATE,
    BYTES_PER_UPDATE,
    flops_byte_ratio,
    flops_per_update,
    bytes_per_update,
)
from repro.metrics.ranking import (
    hit_rate,
    ndcg_at_n,
    precision_at_n,
    recall_at_n,
    top_n,
)
from repro.metrics.rmse import predict, rmse, rmse_objective
from repro.metrics.throughput import (
    ThroughputRecord,
    effective_bandwidth,
    updates_per_second,
)

__all__ = [
    "rmse",
    "predict",
    "top_n",
    "hit_rate",
    "precision_at_n",
    "recall_at_n",
    "ndcg_at_n",
    "rmse_objective",
    "updates_per_second",
    "effective_bandwidth",
    "ThroughputRecord",
    "flops_byte_ratio",
    "flops_per_update",
    "bytes_per_update",
    "FLOPS_PER_UPDATE",
    "BYTES_PER_UPDATE",
]

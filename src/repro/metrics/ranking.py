"""Top-N ranking metrics for the recommender use-case (§1's motivation).

The paper evaluates with RMSE; downstream recommenders care about ranking.
This module provides the standard top-N metrics — hit rate, precision,
recall, and NDCG — computed from score arrays, plus a helper that ranks
items for a user while excluding already-rated ones.
"""

from __future__ import annotations

import numpy as np

__all__ = ["top_n", "hit_rate", "precision_at_n", "recall_at_n", "ndcg_at_n"]


def top_n(
    scores: np.ndarray, n: int, exclude: np.ndarray | None = None
) -> np.ndarray:
    """Indices of the ``n`` highest-scoring items, skipping ``exclude``.

    Deterministic: ties break toward the lower index.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    scores = np.asarray(scores, dtype=np.float64)  # lint: fp64-accumulator -- ranking ties resolved in full precision
    if scores.ndim != 1:
        raise ValueError("scores must be 1-D")
    if exclude is not None and len(exclude):
        scores = scores.copy()
        scores[np.asarray(exclude)] = -np.inf
    order = np.argsort(-scores, kind="stable")
    valid = order[np.isfinite(scores[order])]
    return valid[:n]


def _validate(recommended: np.ndarray, relevant: np.ndarray) -> tuple[np.ndarray, set]:
    recommended = np.asarray(recommended)
    rel = set(np.asarray(relevant).tolist())
    if len(recommended) == 0:
        raise ValueError("recommended list is empty")
    if len(rel) == 0:
        raise ValueError("relevant set is empty")
    return recommended, rel


def hit_rate(recommended: np.ndarray, relevant: np.ndarray) -> float:
    """1.0 if any recommended item is relevant, else 0.0."""
    recommended, rel = _validate(recommended, relevant)
    return 1.0 if any(int(i) in rel for i in recommended) else 0.0


def precision_at_n(recommended: np.ndarray, relevant: np.ndarray) -> float:
    """Fraction of the recommended list that is relevant."""
    recommended, rel = _validate(recommended, relevant)
    hits = sum(1 for i in recommended if int(i) in rel)
    return hits / len(recommended)


def recall_at_n(recommended: np.ndarray, relevant: np.ndarray) -> float:
    """Fraction of the relevant set that was recommended."""
    recommended, rel = _validate(recommended, relevant)
    hits = sum(1 for i in recommended if int(i) in rel)
    return hits / len(rel)


def ndcg_at_n(recommended: np.ndarray, relevant: np.ndarray) -> float:
    """Binary-relevance NDCG of the recommended list."""
    recommended, rel = _validate(recommended, relevant)
    gains = np.array([1.0 if int(i) in rel else 0.0 for i in recommended])
    discounts = 1.0 / np.log2(np.arange(2, len(gains) + 2))
    dcg = float(gains @ discounts)
    ideal_hits = min(len(rel), len(gains))
    idcg = float(discounts[:ideal_hits].sum())
    # clamp fp summation jitter so a perfect ranking is exactly 1.0
    return min(1.0, dcg / idcg)

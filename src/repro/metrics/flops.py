"""Workload characterization: the Flops/Byte analysis of §2.3.

Eq. 5 of the paper::

    Flops/Byte = (6k + Σ_{i=1..log k} k/2^i) / (sizeof(r_uv) + 4k·sizeof(float))

The numerator counts one SGD update: the dot product (2k flops), the error
(1 flop, folded into the 6k bookkeeping as in the paper), two AXPY-style
vector updates (4k flops), plus the tree reduction of the dot product
(Σ k/2^i ≈ k flops). The denominator counts the bytes touched: one COO
sample plus a read *and* write of both feature vectors.

For k = 128 and 12-byte samples this gives ≈ 0.43 flops/byte; a CPU's
balance point is ~10, so SGD-based MF is firmly memory-bound — the paper's
central observation.
"""

from __future__ import annotations

from repro.data.container import SAMPLE_BYTES

__all__ = [
    "flops_per_update",
    "bytes_per_update",
    "flops_byte_ratio",
    "FLOPS_PER_UPDATE",
    "BYTES_PER_UPDATE",
]


def flops_per_update(k: int) -> int:
    """Floating-point operations in one SGD update (numerator of Eq. 5)."""
    if k <= 0:
        raise ValueError(f"feature dimension must be positive, got {k}")
    reduction = 0
    step = k
    while step > 1:
        step //= 2
        reduction += step
    return 6 * k + reduction


def bytes_per_update(
    k: int,
    sample_bytes: int = SAMPLE_BYTES,
    feature_bytes: int = 4,
) -> int:
    """Bytes moved by one SGD update (denominator of Eq. 5).

    ``feature_bytes`` is ``sizeof(float)`` = 4, or 2 when the feature matrices
    are stored half-precision (§4), which halves feature traffic: the factor
    4 in ``4k`` counts read+write of both p_u and q_v.
    """
    if k <= 0:
        raise ValueError(f"feature dimension must be positive, got {k}")
    return sample_bytes + 4 * k * feature_bytes


def flops_byte_ratio(
    k: int,
    sample_bytes: int = SAMPLE_BYTES,
    feature_bytes: int = 4,
) -> float:
    """Eq. 5: arithmetic intensity of one SGD update."""
    return flops_per_update(k) / bytes_per_update(k, sample_bytes, feature_bytes)


#: Paper reference point: k = 128, fp32 features.
FLOPS_PER_UPDATE = flops_per_update(128)
BYTES_PER_UPDATE = bytes_per_update(128)

"""Root-mean-square error — the paper's convergence indicator.

Test RMSE over the held-out set (Figs. 7b, 9, 12, 13, 14, 16) and the full
regularized objective of Eq. 2.
"""

from __future__ import annotations

import numpy as np

from repro.data.container import RatingMatrix

__all__ = ["predict", "rmse", "rmse_objective"]

#: Chunk size for streaming RMSE evaluation; bounds peak memory at ~chunk*k.
_EVAL_CHUNK = 1 << 20


def predict(
    p: np.ndarray, q: np.ndarray, rows: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """Predicted ratings ``p_u . q_v`` for each (u, v) pair, in float32."""
    pu = np.asarray(p, dtype=np.float32)[rows]
    qv = np.asarray(q, dtype=np.float32)[cols]
    return np.einsum("ij,ij->i", pu, qv)


def rmse(p: np.ndarray, q: np.ndarray, ratings: RatingMatrix) -> float:
    """Test RMSE of the model (P, Q) against the observed samples.

    Evaluates in chunks so paper-scale test sets (tens of millions of
    samples) never materialize an ``N x k`` intermediate.
    """
    if ratings.nnz == 0:
        raise ValueError("cannot compute RMSE of an empty rating set")
    sse = 0.0
    for lo in range(0, ratings.nnz, _EVAL_CHUNK):
        hi = min(lo + _EVAL_CHUNK, ratings.nnz)
        pred = predict(p, q, ratings.rows[lo:hi], ratings.cols[lo:hi])
        diff = ratings.vals[lo:hi] - pred
        sse += float(np.dot(diff, diff))
    return float(np.sqrt(sse / ratings.nnz))


def rmse_objective(
    p: np.ndarray,
    q: np.ndarray,
    ratings: RatingMatrix,
    lam_p: float,
    lam_q: float | None = None,
) -> float:
    """The full regularized objective of Eq. 2 (sum, not mean).

    ``sum (r_uv - p_u.q_v)^2 + λ_p Σ||p_u||² + λ_q Σ||q_v||²`` where the
    regularization is counted once per *observed sample*, matching the
    per-sample loss of Eq. 3 that SGD actually descends.
    """
    lam_q = lam_p if lam_q is None else lam_q
    p = np.asarray(p, dtype=np.float32)
    q = np.asarray(q, dtype=np.float32)
    sse = 0.0
    reg = 0.0
    for lo in range(0, ratings.nnz, _EVAL_CHUNK):
        hi = min(lo + _EVAL_CHUNK, ratings.nnz)
        r, c = ratings.rows[lo:hi], ratings.cols[lo:hi]
        pred = predict(p, q, r, c)
        diff = ratings.vals[lo:hi] - pred
        sse += float(np.dot(diff, diff))
        reg += lam_p * float(np.einsum("ij,ij->", p[r], p[r]))
        reg += lam_q * float(np.einsum("ij,ij->", q[c], q[c]))
    return sse + reg

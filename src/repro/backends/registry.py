"""Backend registry: feature detection, verification gates, fallback.

Backends register lazily — a factory per :class:`BackendType`, instantiated
at most once — behind feature detection (``importlib.util.find_spec``), so
importing this module costs nothing and never imports an optional
dependency. :func:`get_backend` is the one resolution entry point:

1. resolve the request (``"auto"``, a name, a :class:`BackendType`, or an
   already-constructed :class:`KernelBackend`) to a candidate;
2. run the candidate through :func:`verify_backend` — a fixed seeded
   mini-problem replayed against the reference kernels of
   :mod:`repro.core.kernels`, ``tobytes``-equal for ``exact`` backends and
   ``np.allclose`` for accelerated ones (verified once per process, then
   cached);
3. on a missing dependency, failed instantiation, or failed verification:
   warn **once per backend per process** and fall back to the NumPy
   reference, so training never dies because an accelerator is absent.

``"auto"`` at this layer means "the most accelerated backend that is
present and verified" (cupy > numba > numpy). Size-aware selection — is the
problem big enough to amortize a JIT? — lives one level up, in
:func:`repro.parallel.policy.choose_backend`.
"""

from __future__ import annotations

import importlib.util
import warnings

import numpy as np

from repro.backends.base import BackendType, KernelBackend
from repro.backends.numpy_backend import NumpyBackend
from repro.core.kernels import sgd_serial_update, sgd_wave_update

__all__ = [
    "BackendUnavailable",
    "BackendVerificationError",
    "available_backends",
    "backend_status",
    "get_backend",
    "verify_backend",
]


class BackendUnavailable(RuntimeError):
    """The requested backend's dependency is missing or unusable."""


class BackendVerificationError(RuntimeError):
    """A backend's kernels disagree with the reference beyond its gate."""


def _make_numba() -> KernelBackend:
    from repro.backends.numba_backend import NumbaBackend

    return NumbaBackend()


def _make_cupy() -> KernelBackend:
    from repro.backends.cupy_backend import CupyBackend

    return CupyBackend()


#: backend -> (feature-detection module, factory). NumPy has no entry: it is
#: always available and constructed directly.
_OPTIONAL = {
    BackendType.NUMBA: ("numba", _make_numba),
    BackendType.CUPY: ("cupy", _make_cupy),
}

#: ``"auto"`` preference order at the registry layer (most accelerated
#: first); the policy layer narrows this by problem size.
_AUTO_ORDER = (BackendType.CUPY, BackendType.NUMBA, BackendType.NUMPY)

#: relative/absolute tolerance for non-exact backends: fp32 kernels with a
#: different reduction order drift by a few ULPs per update, not more
_RTOL, _ATOL = 1e-4, 1e-5

_instances: dict[BackendType, KernelBackend] = {}
_verified: set[int] = set()
_warned: set[str] = set()


def _warn_once(key: str, message: str) -> None:
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def _count_fallback(btype: BackendType) -> None:
    """Every fallback lands in the ambient registry (warning is once-only,
    the counter is not); no-op without an active collector."""
    from repro.obs.context import active_registry
    from repro.obs.registry import M

    registry = active_registry()
    if registry is not None:
        registry.counter(M.BACKEND_FALLBACKS, {"backend": btype.value}).inc()


def _module_present(btype: BackendType) -> bool:
    if btype is BackendType.NUMPY:
        return True
    module = _OPTIONAL[btype][0]
    try:
        return importlib.util.find_spec(module) is not None
    except (ImportError, ValueError):  # pragma: no cover - broken metadata
        return False


def _instantiate(btype: BackendType) -> KernelBackend:
    """Construct (once) the backend instance; raises BackendUnavailable."""
    inst = _instances.get(btype)
    if inst is not None:
        return inst
    if btype is BackendType.NUMPY:
        inst = NumpyBackend()
    else:
        module, factory = _OPTIONAL[btype]
        if not _module_present(btype):
            raise BackendUnavailable(
                f"backend {btype.value!r} needs the optional dependency "
                f"{module!r}, which is not installed"
            )
        try:
            inst = factory()
        except Exception as exc:
            raise BackendUnavailable(
                f"backend {btype.value!r} failed to initialize: {exc}"
            ) from exc
    _instances[btype] = inst
    return inst


# ---------------------------------------------------------------------------
# verification gate
# ---------------------------------------------------------------------------
def _verification_problem():
    """Fixed seeded mini-problem with conflict-free waves.

    Rows/cols inside each wave are distinct (sliced from permutations), so
    scatter order cannot distinguish implementations — the gate then tests
    arithmetic, not duplicate-resolution policy (which Hogwild semantics
    leave open for accelerated backends).
    """
    rng = np.random.default_rng(20260808)
    m, n, k, w, n_waves = 48, 40, 8, 16, 4
    p = rng.standard_normal((m, k)).astype(np.float32)
    q = rng.standard_normal((n, k)).astype(np.float32)
    waves = []
    for _ in range(n_waves):
        rows = rng.permutation(m)[:w].astype(np.int64)
        cols = rng.permutation(n)[:w].astype(np.int64)
        vals = rng.standard_normal(w).astype(np.float32)
        waves.append((rows, cols, vals))
    return p, q, waves


def verify_backend(backend: KernelBackend) -> None:
    """Gate ``backend`` against the reference kernels; raises
    :class:`BackendVerificationError` on disagreement.

    Exact backends must match :func:`sgd_wave_update` /
    :func:`sgd_serial_update` bit for bit; accelerated backends within
    ``np.allclose`` tolerance. Each instance verifies once per process.
    """
    if id(backend) in _verified:
        return
    p0, q0, waves = _verification_problem()
    lr, lam = 0.05, 0.02

    ref_p, ref_q = p0.copy(), q0.copy()
    got_p, got_q = p0.copy(), q0.copy()
    from repro.core.kernels import WaveWorkspace

    ws = WaveWorkspace()
    bound = backend.bind(ws)
    for rows, cols, vals in waves:
        sgd_wave_update(ref_p, ref_q, rows, cols, vals, lr, lam, lam)
        bound(got_p, got_q, rows, cols, vals, lr, lam, lam)
    _compare(backend, "wave_update", ref_p, got_p, ref_q, got_q)

    # serial replay: concatenate the waves into one worker-run sequence
    rows = np.concatenate([wv[0] for wv in waves])
    cols = np.concatenate([wv[1] for wv in waves])
    vals = np.concatenate([wv[2] for wv in waves])
    ref_p, ref_q = p0.copy(), q0.copy()
    got_p, got_q = p0.copy(), q0.copy()
    sgd_serial_update(ref_p, ref_q, rows, cols, vals, lr, lam, lam, max_wave=16)
    backend.serial_update(got_p, got_q, rows, cols, vals, lr, lam, lam,
                          max_wave=16)
    _compare(backend, "serial_update", ref_p, got_p, ref_q, got_q)
    _verified.add(id(backend))


def _compare(backend, kernel, ref_p, got_p, ref_q, got_q) -> None:
    if backend.exact:
        ok = (ref_p.tobytes() == got_p.tobytes()
              and ref_q.tobytes() == got_q.tobytes())
        gate = "bit identity"
    else:
        ok = (np.allclose(ref_p, got_p, rtol=_RTOL, atol=_ATOL)
              and np.allclose(ref_q, got_q, rtol=_RTOL, atol=_ATOL))
        gate = f"allclose(rtol={_RTOL}, atol={_ATOL})"
    if not ok:
        raise BackendVerificationError(
            f"backend {backend.name.value!r} failed the {gate} gate on "
            f"{kernel} against the reference kernels"
        )


# ---------------------------------------------------------------------------
# public resolution API
# ---------------------------------------------------------------------------
def available_backends() -> tuple[BackendType, ...]:
    """Backends whose dependency is importable, in ``_AUTO_ORDER``-reversed
    (numpy first) declaration order. Presence, not verification: a present
    backend can still fail its gate and fall back at :func:`get_backend`."""
    out = [BackendType.NUMPY]
    for btype in (BackendType.NUMBA, BackendType.CUPY):
        if _module_present(btype):
            out.append(btype)
    return tuple(out)


def backend_status() -> dict[str, str]:
    """Human-readable availability map (for CLI/debug output)."""
    status = {}
    for btype in BackendType:
        if not _module_present(btype):
            status[btype.value] = "missing dependency"
        elif btype in _instances and id(_instances[btype]) in _verified:
            status[btype.value] = "verified"
        else:
            status[btype.value] = "present"
    return status


def _coerce_request(name) -> BackendType | None:
    """None/"auto" -> None (meaning auto); else a BackendType."""
    if name is None:
        return BackendType.NUMPY
    if isinstance(name, BackendType):
        return name
    text = str(name).strip().lower()
    if text == "auto":
        return None
    try:
        return BackendType(text)
    except ValueError:
        raise ValueError(
            f"unknown backend {name!r}; choose from "
            f"{['auto'] + [b.value for b in BackendType]}"
        ) from None


def get_backend(name="auto") -> KernelBackend:
    """Resolve, verify, and return a kernel backend.

    ``name`` may be ``None`` (the NumPy reference — the bit-stable default
    every executor uses unless told otherwise), ``"auto"``, a backend name,
    a :class:`BackendType`, or an existing :class:`KernelBackend` instance
    (verified, then returned as-is). Unavailable or verification-failing
    optional backends warn once per process and fall back to NumPy.
    """
    if isinstance(name, KernelBackend):
        verify_backend(name)
        return name
    requested = _coerce_request(name)
    candidates = _AUTO_ORDER if requested is None else (requested,)
    for btype in candidates:
        if requested is None and not _module_present(btype):
            continue  # auto mode skips absent backends silently
        try:
            backend = _instantiate(btype)
            verify_backend(backend)
            return backend
        except BackendUnavailable as exc:
            _count_fallback(btype)
            _warn_once(
                f"unavailable:{btype.value}",
                f"{exc}; falling back to the numpy reference backend",
            )
        except BackendVerificationError as exc:
            _count_fallback(btype)
            _warn_once(
                f"verify:{btype.value}",
                f"{exc}; falling back to the numpy reference backend",
            )
    return _instantiate(BackendType.NUMPY)

"""The NumPy reference backend — the bit-exact anchor of the registry.

This backend *is* :mod:`repro.core.kernels`: every method delegates to the
reference kernels, and :meth:`NumpyBackend.bind` returns the caller's own
``WaveWorkspace.wave_update`` bound method. Dispatching an executor through
``get_backend("numpy")`` therefore runs the exact callable the executor
invoked before the registry existed — same allocation-free scratch, same
operation order, same bits (the registry's verification gate pins this with
``tobytes`` equality on every ``get_backend`` resolution).
"""

from __future__ import annotations

from repro.backends.base import BackendType, KernelBackend
from repro.core.kernels import sgd_serial_update, sgd_wave_update

__all__ = ["NumpyBackend"]


class NumpyBackend(KernelBackend):
    """Reference kernels, re-exported behind the backend contract."""

    name = BackendType.NUMPY
    exact = True

    def bind(self, workspace):
        """The workspace's own bound wave kernel — zero dispatch overhead."""
        return workspace.wave_update

    def wave_update(self, p, q, rows, cols, vals, lr, lam_p, lam_q,
                    workspace=None):
        return sgd_wave_update(p, q, rows, cols, vals, lr, lam_p, lam_q,
                               workspace=workspace)

    def serial_update(self, p, q, rows, cols, vals, lr, lam_p, lam_q,
                      max_wave=64, workspace=None):
        return sgd_serial_update(p, q, rows, cols, vals, lr, lam_p, lam_q,
                                 max_wave=max_wave, workspace=workspace)

"""Numba nopython kernels: JIT-compiled wave/serial SGD updates.

Optional — this module imports cleanly without Numba installed; the
registry only instantiates :class:`NumbaBackend` after feature detection
(``importlib.util.find_spec("numba")``), and instantiation compiles nothing
(kernels JIT on first launch, so the multi-second compile cost lands once
and only when the backend is actually used).

The kernels reproduce the reference race semantics explicitly:

* **snapshot gather** — every worker's ``p_u``/``q_v`` is copied out before
  any worker writes (the gather loop completes before the scatter loop
  starts), matching the most-adversarial-interleaving contract of
  :func:`repro.core.kernels.sgd_wave_update`;
* **last-writer-wins scatter** — the write-back loop walks samples in index
  order, so duplicate rows/columns resolve exactly as NumPy's fancy-index
  assignment does.

Arithmetic is fp32 throughout (gathers promote fp16 storage), but the
scalar accumulation order inside the dot product differs from NumPy's
pairwise ``einsum`` reduction — the backend is therefore registered with
``exact=False`` and gated by tolerance, not bit identity.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import BackendType, KernelBackend
from repro.sched.plan import SerialPlan

__all__ = ["NumbaBackend"]


def _build_kernels():
    """Compile-on-demand kernel pair. Raises ImportError without numba."""
    import numba

    f32 = np.float32

    @numba.njit(cache=True, nogil=True)
    def wave_kernel(p, q, rows, cols, vals, lr, lam_p, lam_q):
        w = rows.shape[0]
        k = p.shape[1]
        pu = np.empty((w, k), dtype=f32)
        qv = np.empty((w, k), dtype=f32)
        err = np.empty(w, dtype=f32)
        # phase 1: snapshot gather + error, before any write
        for i in range(w):
            r = rows[i]
            c = cols[i]
            e = f32(0.0)
            for j in range(k):
                pj = f32(p[r, j])
                qj = f32(q[c, j])
                pu[i, j] = pj
                qv[i, j] = qj
                e += pj * qj
            err[i] = f32(vals[i]) - e
        # phase 2: racy scatter in index order (last writer wins)
        for i in range(w):
            r = rows[i]
            c = cols[i]
            e = err[i]
            for j in range(k):
                pj = pu[i, j]
                qj = qv[i, j]
                p[r, j] = pj + lr * (e * qj - lam_p * pj)
                q[c, j] = qj + lr * (e * pj - lam_q * qj)
        return err

    @numba.njit(cache=True, nogil=True)
    def serial_kernel(p, q, rows, cols, vals, starts, stops, lr, lam_p, lam_q):
        for s in range(starts.shape[0]):
            lo = starts[s]
            hi = stops[s]
            wave_kernel(p, q, rows[lo:hi], cols[lo:hi], vals[lo:hi],
                        lr, lam_p, lam_q)

    return wave_kernel, serial_kernel


class NumbaBackend(KernelBackend):
    """JIT wave/serial kernels; tolerance-gated against the reference."""

    name = BackendType.NUMBA
    exact = False

    def __init__(self) -> None:
        self._wave = None
        self._serial = None

    def _kernels(self):
        if self._wave is None:
            self._wave, self._serial = _build_kernels()
        return self._wave, self._serial

    # ------------------------------------------------------------------
    def bind(self, workspace):
        """The jitted wave kernel; ``workspace`` scratch is not needed
        (Numba allocates its snapshot buffers inside the nopython region)."""
        wave, _ = self._kernels()
        return _coerced(wave)

    def wave_update(self, p, q, rows, cols, vals, lr, lam_p, lam_q,
                    workspace=None):
        wave, _ = self._kernels()
        return wave(p, q, rows, cols, vals,
                    np.float32(lr), np.float32(lam_p), np.float32(lam_q))

    def serial_update(self, p, q, rows, cols, vals, lr, lam_p, lam_q,
                      max_wave=64, workspace=None):
        _, serial = self._kernels()
        plan = SerialPlan.compile(rows, cols, max_wave)
        if plan.n_waves == 0:
            return
        serial(p, q, rows, cols, vals, plan.starts, plan.stops,
               np.float32(lr), np.float32(lam_p), np.float32(lam_q))


def _coerced(kernel):
    """Wrap a jitted kernel to pin the hyperparameter scalars to fp32.

    The executors already pre-coerce (``lr = np.float32(lr)``), but the
    bound callable is the backend's public contract and must accept plain
    Python floats like the reference does.
    """

    def wave_update(p, q, rows, cols, vals, lr, lam_p, lam_q):
        return kernel(p, q, rows, cols, vals,
                      np.float32(lr), np.float32(lam_p), np.float32(lam_q))

    return wave_update

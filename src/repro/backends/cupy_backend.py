"""CuPy backend stub: activates when CuPy (and a device) is present.

The repo's north star is the paper's GPU execution model, and this stub is
the mount point for it: the registry feature-detects ``cupy`` and only then
instantiates :class:`CupyBackend`, so the module imports cleanly (and the
backend reports unavailable) on CPU-only boxes like CI.

What is implemented is a *correctness-gated port*, not a performance
port: each call copies the factor slices host→device, runs the wave
arithmetic as CuPy array ops (same snapshot-gather / last-writer-wins
structure as the reference), and copies back. That round-trips PCIe per
wave — orders of magnitude off the paper's resident-factor design — so the
auto-policy never selects it; it exists so the dispatch plumbing, the
verification gate, and the tests exercise a third backend wherever a GPU
box shows up. Keeping P and Q device-resident across an epoch is the
follow-on item tracked in ROADMAP.md.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import BackendType, KernelBackend
from repro.sched.plan import SerialPlan

__all__ = ["CupyBackend"]


class CupyBackend(KernelBackend):
    """Device wave kernel behind host↔device copies; tolerance-gated."""

    name = BackendType.CUPY
    exact = False

    def __init__(self) -> None:
        import cupy

        # fail instantiation (→ registry fallback) when no device exists:
        # find_spec sees the package even on driverless boxes
        cupy.cuda.runtime.getDeviceCount()
        self._cp = cupy

    # ------------------------------------------------------------------
    def bind(self, workspace):
        def wave_update(p, q, rows, cols, vals, lr, lam_p, lam_q):
            return self.wave_update(p, q, rows, cols, vals, lr, lam_p, lam_q)

        return wave_update

    def wave_update(self, p, q, rows, cols, vals, lr, lam_p, lam_q,
                    workspace=None):
        cp = self._cp
        rows_d = cp.asarray(rows)
        cols_d = cp.asarray(cols)
        pu = cp.asarray(p)[rows_d].astype(cp.float32, copy=False)
        qv = cp.asarray(q)[cols_d].astype(cp.float32, copy=False)
        err = cp.asarray(vals).astype(cp.float32, copy=False) - (pu * qv).sum(axis=1)
        lr32 = np.float32(lr)
        new_p = pu + lr32 * (err[:, None] * qv - np.float32(lam_p) * pu)
        new_q = qv + lr32 * (err[:, None] * pu - np.float32(lam_q) * qv)
        # device-side scatter resolves duplicate indices in unspecified
        # order (unlike NumPy's index-order last-writer-wins) — acceptable
        # under Hogwild lost-update semantics, and the registry's
        # verification gate uses conflict-free waves where order is moot
        p_d = cp.asarray(p)
        q_d = cp.asarray(q)
        p_d[rows_d] = new_p.astype(p_d.dtype, copy=False)
        q_d[cols_d] = new_q.astype(q_d.dtype, copy=False)
        p[...] = cp.asnumpy(p_d)
        q[...] = cp.asnumpy(q_d)
        return cp.asnumpy(err)

    def serial_update(self, p, q, rows, cols, vals, lr, lam_p, lam_q,
                      max_wave=64, workspace=None):
        plan = SerialPlan.compile(rows, cols, max_wave)
        for start, stop in zip(plan.starts.tolist(), plan.stops.tolist()):
            self.wave_update(p, q, rows[start:stop], cols[start:stop],
                             vals[start:stop], lr, lam_p, lam_q)

"""Kernel-backend contract: one wave/serial kernel family per backend.

The reference SGD kernels (:mod:`repro.core.kernels`) are vectorized NumPy
with explicit Hogwild race semantics — snapshot gathers, last-writer-wins
scatters — and every convergence and bit-identity claim in the repo anchors
on them.  A :class:`KernelBackend` packages one alternative implementation
of exactly that contract:

* :meth:`KernelBackend.wave_update` — one concurrent wave (all reads from
  the pre-wave snapshot, racy write-back), the unit
  :class:`~repro.core.hogwild.BatchHogwild` and the plan-shard executors
  launch per wave;
* :meth:`KernelBackend.serial_update` — serial-equivalent replay of one
  worker's sample run (conflict-free segmentation), the unit the
  out-of-core block loop launches per block;
* :meth:`KernelBackend.bind` — the hot-loop entry point: given the caller's
  :class:`~repro.core.kernels.WaveWorkspace` it returns the per-wave
  callable the epoch loop invokes.  The NumPy backend returns the
  workspace's own bound method, so dispatching through the registry is
  *structurally* identical to the pre-registry code path — same callable,
  same bits.

``exact`` declares the verification gate: exact backends must reproduce the
reference kernels bit for bit (``tobytes`` equality); accelerated backends
(different summation order, fused arithmetic) are held to a numerical
tolerance instead.  :func:`repro.backends.registry.get_backend` runs the
gate before handing a backend out.

:func:`estimate_memory_bytes` is the shared sizing model the auto-policy
and device-backed backends consult before committing to a configuration.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

__all__ = ["BackendType", "KernelBackend", "estimate_memory_bytes"]


class BackendType(str, Enum):
    """Registered kernel-backend families."""

    NUMPY = "numpy"
    NUMBA = "numba"
    CUPY = "cupy"

    def __str__(self) -> str:  # "numpy", not "BackendType.NUMPY", in messages
        return self.value


class KernelBackend:
    """Base class for kernel backends; subclasses implement the kernels.

    Attributes
    ----------
    name:
        The :class:`BackendType` this implementation registers as.
    exact:
        True when the backend must match the reference kernels bit for bit
        (the verification gate uses ``tobytes`` equality); False holds it
        to ``np.allclose`` tolerance instead (see
        :func:`repro.backends.registry.verify_backend`).
    """

    name: BackendType = BackendType.NUMPY
    exact: bool = True

    # ------------------------------------------------------------------
    def bind(self, workspace):
        """Return the per-wave callable the epoch hot loop should invoke.

        The callable's signature is
        ``f(p, q, rows, cols, vals, lr, lam_p, lam_q)`` — exactly what the
        executors' hot loops pass today. ``workspace`` is the caller's
        (thread-/process-private) :class:`~repro.core.kernels.WaveWorkspace`;
        backends that don't use NumPy scratch may ignore it.
        """
        raise NotImplementedError

    def wave_update(self, p, q, rows, cols, vals, lr, lam_p, lam_q,
                    workspace=None):
        """One concurrent wave with Hogwild race semantics (see
        :func:`repro.core.kernels.sgd_wave_update`)."""
        raise NotImplementedError

    def serial_update(self, p, q, rows, cols, vals, lr, lam_p, lam_q,
                      max_wave: int = 64, workspace=None):
        """Serial-equivalent replay of one worker's sample run (see
        :func:`repro.core.kernels.sgd_serial_update`)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name.value} exact={self.exact}>"


def estimate_memory_bytes(
    m: int,
    n: int,
    k: int,
    nnz: int,
    *,
    workers: int = 128,
    n_workers: int = 1,
    half_precision: bool = False,
) -> int:
    """Working-set estimate (bytes) for one training run.

    Counts the factor matrices, the COO rating arrays, the compiled epoch
    plan (padded index matrix + the wave-major gather buffers each worker's
    workspace materializes), and per-worker kernel scratch. Intentionally a
    ceiling-flavoured estimate: the auto-policy and device backends use it
    to *decline* configurations, so overcounting a few percent is the safe
    direction.
    """
    itemsize = 2 if half_precision else 4
    factors = (m + n) * k * itemsize
    # COO arrays: int32 row + int32 col + float32 value
    data = nnz * (4 + 4 + 4)
    span = workers * 256  # plan padding rounds nnz up to a chunk-group
    padded = -(-max(nnz, 1) // span) * span
    plan = padded * 8  # int64 index matrix
    # wave-major gathers (intp rows + intp cols + f32 vals) per workspace
    gathers = padded * (np.dtype(np.intp).itemsize * 2 + 4)
    # kernel scratch: 5 (w, k) fp32 temporaries + the error vector
    scratch = workers * (5 * k + 1) * 4
    return int(factors + data + plan + max(1, n_workers) * (gathers + scratch))

"""Pluggable SGD kernel backends.

One training run, several possible kernel implementations: the vectorized
NumPy reference (:mod:`repro.core.kernels`, bit-exact, always present),
Numba nopython JIT kernels, and a CuPy device stub — each registered behind
feature detection and a correctness gate against the reference. Executors
resolve a backend once per fit through :func:`get_backend` and drive their
hot loops through the bound callable it returns; the default (``None``)
resolves to the NumPy reference, so existing bit-identity contracts are
untouched unless a caller opts in.

See ``docs/PERFORMANCE.md`` (backend matrix) and
:mod:`repro.parallel.policy` for how ``--executor auto`` picks a backend
per problem size.
"""

from repro.backends.base import BackendType, KernelBackend, estimate_memory_bytes
from repro.backends.registry import (
    BackendUnavailable,
    BackendVerificationError,
    available_backends,
    backend_status,
    get_backend,
    verify_backend,
)

__all__ = [
    "BackendType",
    "KernelBackend",
    "estimate_memory_bytes",
    "BackendUnavailable",
    "BackendVerificationError",
    "available_backends",
    "backend_status",
    "get_backend",
    "verify_backend",
]

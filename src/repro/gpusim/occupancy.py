"""Occupancy model: how many parallel workers a GPU can keep resident.

CuMF_SGD fixes the thread-block size at one warp (32 threads) to use warp
shuffles, and the CUDA compiler needs 33 registers/thread (§4) — low enough
that concurrency is limited only by the architectural resident-block cap of
32 blocks/SM. That yields the paper's 768 workers on Maxwell (24 SMs) and
1792 on Pascal (56 SMs).
"""

from __future__ import annotations

from repro.gpusim.specs import GPUSpec

__all__ = [
    "max_parallel_workers",
    "occupancy_fraction",
    "register_limited_blocks",
]

#: Registers the CUDA compiler allocates per thread for the cuMF_SGD kernel.
KERNEL_REGISTERS_PER_THREAD = 33
#: Warp-sized thread blocks (the §4 design decision enabling warp shuffle).
BLOCK_THREADS = 32
#: 64K 32-bit registers per SM on both Maxwell and Pascal.
REGISTERS_PER_SM = 65536
#: Max resident threads per SM on both generations.
THREADS_PER_SM = 2048


def register_limited_blocks(registers_per_thread: int = KERNEL_REGISTERS_PER_THREAD) -> int:
    """Resident blocks/SM allowed by the register file alone."""
    if registers_per_thread <= 0:
        raise ValueError("registers_per_thread must be positive")
    return REGISTERS_PER_SM // (registers_per_thread * BLOCK_THREADS)


def max_parallel_workers(spec: GPUSpec, registers_per_thread: int = KERNEL_REGISTERS_PER_THREAD) -> int:
    """Hardware cap on concurrent parallel workers for the cuMF_SGD kernel.

    The binding limit is ``min(arch block cap, register cap, thread cap)``
    per SM times the SM count. With 33 regs/thread the register file allows
    62 blocks/SM, and 32-thread blocks leave the thread cap at 64/SM, so the
    architectural 32 blocks/SM cap binds — matching the paper's 768/1792.
    """
    per_sm = min(
        spec.max_blocks_per_sm,
        register_limited_blocks(registers_per_thread),
        THREADS_PER_SM // BLOCK_THREADS,
    )
    return per_sm * spec.sms


def occupancy_fraction(workers: int, spec: GPUSpec) -> float:
    """Fraction of the resident-worker cap in use."""
    cap = max_parallel_workers(spec)
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    return min(1.0, workers / cap)

"""Event-driven scheduler microsimulation.

The analytic contention model (:mod:`repro.gpusim.contention`) derives the
Fig. 5b saturation knees from closed-form queueing bounds. This module
*simulates* the same systems mechanistically — N workers as discrete events
contending for a serialized critical section (LIBMF's table), per-column
locks (wavefront), or nothing (batch-Hogwild!) — so the closed forms can be
validated against an independent mechanism, and so transient effects (epoch
tails, wave imbalance) can be inspected.

Workers are modelled as: acquire scheduling resource → process one block of
``updates_per_block`` updates, each taking ``update_seconds`` → release →
repeat, until the epoch's update budget is exhausted.

Fault semantics: a :class:`repro.resilience.faults.FaultPlan` treats each
worker as a device. A straggler worker's updates take ``slowdown`` times
longer; a worker killed after ``n`` block grants stops pulling work — its
share of the epoch budget drains through the survivors (the epoch tail
lengthens but completes). Killing *every* worker with budget remaining
raises :class:`~repro.resilience.faults.DeviceLostError`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np

from repro.obs.context import active_registry, active_tracer
from repro.obs.registry import M
from repro.obs.tracer import SIM_PID

__all__ = ["EventSimResult", "simulate_scheduler"]

#: Trace pid row for event-sim timelines (kept clear of stream pids).
EVENT_SIM_PID = SIM_PID + 64


@dataclass(frozen=True)
class EventSimResult:
    """Outcome of one simulated epoch."""

    scheme: str
    workers: int
    total_updates: int
    makespan: float
    #: total time workers spent waiting for the scheduling resource
    wait_time: float
    #: per-worker completed updates
    per_worker_updates: np.ndarray

    @property
    def updates_per_sec(self) -> float:
        return self.total_updates / self.makespan if self.makespan > 0 else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of worker-time spent computing rather than waiting."""
        total_worker_time = self.makespan * self.workers
        return 1.0 - self.wait_time / total_worker_time if total_worker_time else 0.0


def simulate_scheduler(
    scheme: str,
    workers: int,
    updates_per_block: int,
    update_seconds: float,
    epoch_updates: int,
    t_critical: float = 0.0,
    n_columns: int | None = None,
    seed: int = 0,
    faults=None,
) -> EventSimResult:
    """Simulate one epoch of block scheduling.

    Parameters
    ----------
    scheme:
        ``"lockfree"`` — no scheduling resource (batch-Hogwild!);
        ``"critical"`` — one global critical section of ``t_critical``
        seconds per grant, serialized across workers (LIBMF's table);
        ``"column_locks"`` — a grant needs one of ``n_columns`` column
        locks chosen at random; conflicting grants retry (wavefront).
    epoch_updates:
        Total updates in the epoch; workers pull blocks until exhausted.
    faults:
        Optional :class:`repro.resilience.faults.FaultPlan` over workers:
        stragglers slow their updates, killed workers stop pulling blocks
        after their grant ordinal (survivors absorb the remaining budget).
    """
    if scheme not in ("lockfree", "critical", "column_locks"):
        raise ValueError(f"unknown scheme {scheme!r}")
    if workers <= 0 or updates_per_block <= 0 or epoch_updates <= 0:
        raise ValueError("workers, updates_per_block, epoch_updates must be positive")
    if update_seconds <= 0:
        raise ValueError("update_seconds must be positive")
    if scheme == "column_locks":
        if n_columns is None or n_columns < workers:
            raise ValueError("column_locks needs n_columns >= workers")
    rng = np.random.default_rng(seed)

    block_time = updates_per_block * update_seconds
    remaining = epoch_updates
    issued = 0

    # event queue of (time, seq, worker, phase)
    counter = itertools.count()
    events: list[tuple[float, int, int, str]] = []
    for w in range(workers):
        heapq.heappush(events, (0.0, next(counter), w, "request"))

    critical_free_at = 0.0
    column_free_at = (
        np.zeros(n_columns) if scheme == "column_locks" else np.zeros(0)
    )
    per_worker = np.zeros(workers, dtype=np.int64)
    wait_time = 0.0
    makespan = 0.0
    tracer = active_tracer()
    if tracer is not None:
        for w in range(workers):
            tracer.name_thread(EVENT_SIM_PID, w, f"eventsim:{scheme}:w{w}")

    grants = np.zeros(workers, dtype=np.int64)
    dead: set[int] = set()
    registry_early = active_registry()
    while events and issued < epoch_updates:
        now, _, w, phase = heapq.heappop(events)
        if phase != "request":
            continue
        if faults is not None:
            killed_after = faults.killed_after(w)
            if killed_after is not None and grants[w] >= killed_after:
                if w not in dead:
                    dead.add(w)
                    if registry_early is not None:
                        registry_early.counter(M.RESILIENCE_DEVICE_LOST).inc()
                continue  # worker gone: not requeued; survivors absorb the budget
        take = min(updates_per_block, epoch_updates - issued)
        if take <= 0:
            break
        worker_update_seconds = update_seconds * (
            1.0 if faults is None else faults.slowdown(w)
        )
        if scheme == "lockfree":
            start = now
        elif scheme == "critical":
            start = max(now, critical_free_at) + t_critical
            critical_free_at = start
            wait_time += start - now
        else:  # column_locks
            col = int(rng.integers(0, len(column_free_at)))
            start = max(now, float(column_free_at[col]))
            wait_time += start - now
            column_free_at[col] = start + take * worker_update_seconds
        finish = start + take * worker_update_seconds
        per_worker[w] += take
        grants[w] += 1
        issued += take
        makespan = max(makespan, finish)
        heapq.heappush(events, (finish, next(counter), w, "request"))
        if tracer is not None:
            if start > now:
                tracer.add_span(
                    "wait", now, start - now,
                    pid=EVENT_SIM_PID, tid=w, cat="sched",
                )
            tracer.add_span(
                "block", start, finish - start,
                pid=EVENT_SIM_PID, tid=w, cat="sched",
                args={"updates": int(take)},
            )

    if issued < epoch_updates:
        from repro.resilience.faults import DeviceLostError

        raise DeviceLostError(
            f"all {workers} workers lost with "
            f"{epoch_updates - issued} updates outstanding"
        )

    registry = active_registry()
    if registry is not None:
        registry.counter(
            M.SIM_SCHED_WAIT_SECONDS, {"scheme": scheme}
        ).inc(wait_time)
        registry.gauge(
            M.SIM_SCHED_UTILIZATION, {"scheme": scheme, "workers": workers}
        ).set(
            1.0 - wait_time / (makespan * workers) if makespan > 0 else 1.0
        )

    return EventSimResult(
        scheme=scheme,
        workers=workers,
        total_updates=issued,
        makespan=makespan,
        wait_time=wait_time,
        per_worker_updates=per_worker,
    )

"""Warp-level functional model of the cuMF_SGD kernel (Fig. 4, §4).

The CUDA kernel runs one SGD update on one warp (32 threads): each thread
privately owns ``k/32`` feature scalars, the dot product is reduced with a
``__shfl_down`` butterfly and broadcast with ``__shfl``, the sample is read
through ``__ldg``, and the updated vectors are written back coalesced.

This module *executes that algorithm lane by lane* — a 32-lane SIMD
interpreter, not a vectorized shortcut — so the warp program itself can be
verified against the reference update (tests prove bit-level fp32 agreement
modulo reduction-order effects) and instrumented: per-lane flop counts,
shuffle counts, and the coalesced transaction count per memory phase.

It is deliberately slow (it is an emulator); the production path is
:func:`repro.core.kernels.sgd_wave_update`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["WarpStats", "warp_sgd_update", "shfl_down_reduce", "WARP_SIZE"]

WARP_SIZE = 32


@dataclass
class WarpStats:
    """Instrumentation counters for one warp execution."""

    flops: int = 0
    shuffles: int = 0
    global_loads: int = 0
    global_stores: int = 0
    ldg_loads: int = 0
    #: 128-byte coalesced transactions per phase
    transactions: dict = field(default_factory=dict)

    def charge_phase(self, name: str, n_bytes: int, line: int = 128) -> None:
        """Count the coalesced 128-byte transactions of one access phase."""
        self.transactions[name] = self.transactions.get(name, 0) + -(-n_bytes // line)


def shfl_down_reduce(lane_values: np.ndarray, stats: WarpStats | None = None) -> float:
    """The Fig. 4 ``__shfl_down`` butterfly sum over 32 lanes.

    Executes the exact reduction tree (offsets 16, 8, 4, 2, 1) in fp32, so
    the result — including its floating-point rounding order — matches what
    the GPU computes, which generally differs from ``np.sum``'s pairwise
    order in the last ulps.
    """
    vals = np.asarray(lane_values, dtype=np.float32).copy()
    if vals.shape != (WARP_SIZE,):
        raise ValueError(f"need exactly {WARP_SIZE} lane values, got {vals.shape}")
    offset = WARP_SIZE // 2
    while offset >= 1:
        # lane i reads lane i+offset (shfl_down) and accumulates
        shifted = np.concatenate([vals[offset:], np.zeros(offset, np.float32)])
        vals = (vals + shifted).astype(np.float32)
        if stats is not None:
            stats.shuffles += 1
            stats.flops += offset  # adds performed by the active lanes
        offset //= 2
    return float(vals[0])


def warp_sgd_update(
    p: np.ndarray,
    q: np.ndarray,
    u: int,
    v: int,
    r: float,
    lr: float,
    lam: float,
    stats: WarpStats | None = None,
) -> float:
    """Execute one SGD update exactly as the Fig. 4 warp program does.

    Steps, per the kernel: (1) ``__ldg`` the sample, (2) coalesced load of
    the k/32 per-lane slices of ``p_u`` and ``q_v``, (3) per-lane partial
    dot products, (4) shuffle-tree reduction + broadcast of the error,
    (5) per-lane vector update and coalesced store. Mutates ``p`` and ``q``
    and returns the error.

    Requires ``k`` to be a multiple of 32 (the kernel's ILP layout: each
    thread processes ``k/32`` scalars).
    """
    k = p.shape[1]
    if k % WARP_SIZE != 0:
        raise ValueError(f"k={k} must be a multiple of the warp size (32)")
    if q.shape[1] != k:
        raise ValueError("P and Q disagree in k")
    per_lane = k // WARP_SIZE
    stats = stats if stats is not None else WarpStats()

    # (1) read the rating through the read-only cache path
    rating = np.float32(r)
    stats.ldg_loads += 1
    stats.charge_phase("sample", 12)

    # (2) coalesced loads: lane t reads elements t, t+32, t+64, ...
    lanes_p = np.empty((WARP_SIZE, per_lane), dtype=np.float32)
    lanes_q = np.empty((WARP_SIZE, per_lane), dtype=np.float32)
    row_p = p[u].astype(np.float32)
    row_q = q[v].astype(np.float32)
    for lane in range(WARP_SIZE):
        for i in range(per_lane):
            lanes_p[lane, i] = row_p[lane + i * WARP_SIZE]
            lanes_q[lane, i] = row_q[lane + i * WARP_SIZE]
            stats.global_loads += 2
    stats.charge_phase("load_p", k * 4)
    stats.charge_phase("load_q", k * 4)

    # (3) per-lane partial dot product (the ILP-unrolled loop)
    partial = np.zeros(WARP_SIZE, dtype=np.float32)
    for lane in range(WARP_SIZE):
        acc = np.float32(0.0)
        for i in range(per_lane):
            acc = np.float32(acc + lanes_p[lane, i] * lanes_q[lane, i])
            stats.flops += 2
        partial[lane] = acc

    # (4) butterfly reduction; lane 0 computes the error, broadcast via shfl
    dot = np.float32(shfl_down_reduce(partial, stats))
    err = np.float32(rating - dot)
    stats.flops += 1
    stats.shuffles += 1  # the broadcast

    # (5) per-lane update and coalesced store (gradient uses the OLD values)
    lr32, lam32 = np.float32(lr), np.float32(lam)
    for lane in range(WARP_SIZE):
        for i in range(per_lane):
            old_p = lanes_p[lane, i]
            old_q = lanes_q[lane, i]
            new_p = np.float32(old_p + lr32 * np.float32(err * old_q - lam32 * old_p))
            new_q = np.float32(old_q + lr32 * np.float32(err * old_p - lam32 * old_q))
            row_p[lane + i * WARP_SIZE] = new_p
            row_q[lane + i * WARP_SIZE] = new_q
            stats.flops += 8
            stats.global_stores += 2
    stats.charge_phase("store_p", k * 4)
    stats.charge_phase("store_q", k * 4)

    p[u] = row_p if p.dtype == np.float32 else row_p.astype(p.dtype)
    q[v] = row_q if q.dtype == np.float32 else row_q.astype(q.dtype)
    return float(err)

"""CPU-GPU transfer model (§6.2).

Charges the *measured* link bandwidths the paper reports (5.5 GB/s on PCIe
3.0 x16, 29.1 GB/s on NVLink) to block staging: a dispatched block moves its
COO samples plus the touched P/Q segments host-to-device, and the segments
(only) device-to-host afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partition import BlockView
from repro.gpusim.specs import InterconnectSpec

__all__ = ["TransferModel"]


@dataclass(frozen=True)
class TransferModel:
    """Byte accounting + timing for staging blocks over a link."""

    link: InterconnectSpec
    k: int
    feature_bytes: int = 2  # cuMF_SGD stages fp16 features (§4)

    def h2d_bytes(self, block: BlockView) -> int:
        """Host-to-device: samples + both feature segments."""
        return block.coo_bytes() + block.feature_bytes(self.k, self.feature_bytes)

    def d2h_bytes(self, block: BlockView) -> int:
        """Device-to-host: feature segments only (samples are read-only)."""
        return block.feature_bytes(self.k, self.feature_bytes)

    def h2d_seconds(self, block: BlockView) -> float:
        return self.link.transfer_seconds(self.h2d_bytes(block))

    def d2h_seconds(self, block: BlockView) -> float:
        return self.link.transfer_seconds(self.d2h_bytes(block))

    def round_trip_seconds(self, block: BlockView) -> float:
        """Unoverlapped staging cost of one block."""
        return self.h2d_seconds(block) + self.d2h_seconds(block)

    # ------------------------------------------------------------------
    def shape_h2d_seconds(self, nnz: int, rows: int, cols: int) -> float:
        """H2D time for a block described by shape rather than a view."""
        nbytes = nnz * 12 + (rows + cols) * self.k * self.feature_bytes
        return self.link.transfer_seconds(nbytes)

    def shape_d2h_seconds(self, rows: int, cols: int) -> float:
        nbytes = (rows + cols) * self.k * self.feature_bytes
        return self.link.transfer_seconds(nbytes)

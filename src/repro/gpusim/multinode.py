"""Multi-node multi-GPU extension — the paper's first future-work item.

§9: "In future, we plan to extend cuMF_SGD to multiple nodes." This module
extends the performance model to a cluster of GPU nodes: within a node,
GPUs pull independent blocks over PCIe/NVLink exactly as in §6; across
nodes, the feature segments a node hands back must traverse the cluster
network before another node may claim a conflicting block.

The model exposes the trade-off the paper's single-node analysis implies:
because the §7.5 safety rule caps total parallel workers at
``min(m/i, n/j)/20``, adding nodes only helps while the data set's *shape*
has parallelism to give — Hugewiki (n ≈ 40k) saturates almost immediately,
while Yahoo!Music (625k columns) keeps scaling. The reproduction's
conclusion matches the paper's decision to stop at one node for two of the
three workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.convergence import hogwild_safety_bound
from repro.data.synthetic import DatasetSpec
from repro.gpusim.simulator import cumf_throughput, dataset_fits_gpu
from repro.gpusim.specs import GPUSpec
from repro.resilience.faults import DeviceLostError

__all__ = [
    "NodeSpec",
    "multinode_epoch_seconds",
    "multinode_scaling_curve",
    "degraded_epoch_curve",
]


@dataclass(frozen=True)
class NodeSpec:
    """One GPU node of the modelled cluster."""

    gpu: GPUSpec
    gpus_per_node: int = 2
    #: inter-node network bandwidth actually achieved per node (GB/s);
    #: EDR InfiniBand-class fabric
    network_gbs: float = 5.0
    network_latency_us: float = 5.0


def multinode_epoch_seconds(
    dataset: DatasetSpec,
    node: NodeSpec,
    n_nodes: int,
    i_blocks: int | None = None,
    j_blocks: int | None = None,
    half_precision: bool = True,
    failed_gpus: int = 0,
) -> float:
    """Modelled epoch seconds on ``n_nodes`` nodes of ``gpus_per_node`` GPUs.

    The grid defaults to ``(2g, 2g)`` for ``g`` total GPUs (the §7.6
    recommendation), clamped to the matrix shape. Each round dispatches one
    independent block per GPU; intra-node hand-backs ride the GPU link,
    inter-node hand-backs additionally ride the network. Blocks visited by a
    different node than last time must fetch their segments remotely —
    with random scheduling that is a fraction ``1 - 1/n_nodes`` of
    dispatches.

    ``failed_gpus`` models graceful degradation: the grid stays sized for
    the full fleet (it was laid out before the failures), but each round
    only feeds the survivors, so the epoch takes proportionally more
    rounds instead of aborting. Losing every GPU raises
    :class:`~repro.resilience.faults.DeviceLostError`.
    """
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    if failed_gpus < 0:
        raise ValueError(f"failed_gpus must be non-negative, got {failed_gpus}")
    total_gpus = n_nodes * node.gpus_per_node
    g = max(1, total_gpus)
    if failed_gpus >= total_gpus:
        raise DeviceLostError(
            f"all {total_gpus} GPUs lost; no device remains to run the epoch"
        )
    i = i_blocks if i_blocks is not None else min(dataset.m, 2 * g)
    j = j_blocks if j_blocks is not None else min(dataset.n, 2 * g)
    if min(i, j) < g:
        raise ValueError(
            f"grid ({i}, {j}) cannot feed {g} GPUs with independent blocks"
        )

    feature_bytes = 2 if half_precision else 4
    point = cumf_throughput(node.gpu, dataset, half_precision=half_precision)
    total_blocks = i * j
    survivors = total_gpus - failed_gpus
    rounds = -(-total_blocks // min(g, survivors))
    block_nnz = dataset.n_train / total_blocks
    seg_bytes = (dataset.m // i + dataset.n // j) * dataset.k * feature_bytes

    compute = block_nnz / point.updates_per_sec
    link = node.gpu.link
    h2d_bytes = seg_bytes + (0 if dataset_fits_gpu(dataset, node.gpu, half_precision)
                             else block_nnz * 12)
    local_h2d = link.transfer_seconds(h2d_bytes)
    local_d2h = link.transfer_seconds(seg_bytes)
    remote_fraction = 0.0 if n_nodes == 1 else 1.0 - 1.0 / n_nodes
    network = (
        node.network_latency_us * 1e-6 + seg_bytes / (node.network_gbs * 1e9)
    ) * remote_fraction
    # H2D (and the remote fetch feeding it) overlaps the previous round's
    # compute; the D2H hand-back synchronizes the round.
    per_round = max(compute, local_h2d + network) + local_d2h + network
    return rounds * per_round


def multinode_scaling_curve(
    dataset: DatasetSpec,
    node: NodeSpec,
    node_counts: list[int],
    workers_per_gpu: int | None = None,
    half_precision: bool = True,
) -> list[tuple[int, float, float, bool]]:
    """``(nodes, epoch_seconds, speedup_vs_1, safe)`` over a node sweep.

    ``safe`` applies the §7.5 rule to the default ``2g x 2g`` grid with the
    per-GPU worker count — the convergence constraint that ultimately caps
    multi-node scaling for column-starved data sets.
    """
    if not node_counts or any(n <= 0 for n in node_counts):
        raise ValueError("node_counts must be positive")
    workers = workers_per_gpu or node.gpu.max_resident_blocks
    base = multinode_epoch_seconds(dataset, node, 1, half_precision=half_precision)
    out = []
    for n in node_counts:
        g = n * node.gpus_per_node
        i = min(dataset.m, 2 * g)
        j = min(dataset.n, 2 * g)
        seconds = multinode_epoch_seconds(dataset, node, n, half_precision=half_precision)
        safe = workers < hogwild_safety_bound(dataset.m, dataset.n, i, j)
        out.append((n, seconds, base / seconds, safe))
    return out


def degraded_epoch_curve(
    dataset: DatasetSpec,
    node: NodeSpec,
    n_nodes: int,
    failure_counts: list[int],
    half_precision: bool = True,
) -> list[tuple[int, float, float]]:
    """``(failed_gpus, epoch_seconds, slowdown_vs_healthy)`` over a
    failure sweep — the graceful-degradation envelope of one cluster.

    The slowdown quantifies what losing devices *costs* instead of what it
    *breaks*: rounds grow as ``ceil(blocks / survivors)``, so throughput
    degrades roughly linearly until the last GPU, which is the contract the
    runtime coordinator (:class:`repro.core.multi_gpu.MultiDeviceSGD`)
    honours block-for-block.
    """
    if not failure_counts or any(f < 0 for f in failure_counts):
        raise ValueError("failure_counts must be non-negative")
    healthy = multinode_epoch_seconds(
        dataset, node, n_nodes, half_precision=half_precision
    )
    out = []
    for failed in failure_counts:
        seconds = multinode_epoch_seconds(
            dataset, node, n_nodes,
            half_precision=half_precision, failed_gpus=failed,
        )
        out.append((failed, seconds, seconds / healthy))
    return out

"""Cache-efficiency model — why LIBMF's effective bandwidth collapses on
large data sets (Fig. 2a) while the GPU's does not (Fig. 10b).

LIBMF processes one ``a x a`` block per thread; within a block each P row is
reused ``block_nnz / block_rows`` times and each Q row ``block_nnz /
block_cols`` times. Reuse only turns into cache hits for the fraction of the
active working set that actually fits in L3, and the cache is allocated
preferentially to the matrix with the higher reuse (LRU approximates this:
highly reused lines survive).

The *effective* bandwidth the paper plots is bytes **processed by the compute
units** per second (footnote 2) — it exceeds DRAM bandwidth exactly when the
miss rate is below 1. The GPU model needs no such correction: feature-matrix
traffic is essentially un-cached on the GPU (the L1 only serves the
``__ldg`` rating-stream reads), so GPU effective bandwidth ≈ achieved DRAM
bandwidth, which is why cuMF_SGD's bars are flat across data sets in
Fig. 10b.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.container import SAMPLE_BYTES
from repro.data.synthetic import DatasetSpec
from repro.gpusim.specs import CPUSpec

__all__ = ["CacheModel", "libmf_dram_bytes_per_update"]


@dataclass(frozen=True)
class CacheModel:
    """Per-update DRAM traffic of blocked CPU SGD on one data set."""

    dataset: str
    a: int
    threads: int
    reuse_p: float
    reuse_q: float
    miss_p: float
    miss_q: float
    dram_bytes_per_update: float
    processed_bytes_per_update: float

    @property
    def amplification(self) -> float:
        """Effective / DRAM bandwidth ratio (>1 means the cache helps)."""
        return self.processed_bytes_per_update / self.dram_bytes_per_update


def _miss_rate(reuse: float, working_set: float, cache_bytes: float) -> float:
    """Miss rate of one feature matrix inside a block pass.

    ``1/reuse`` is compulsory traffic (each line fetched at least once per
    block); the reuse hits materialize only for the cached fraction
    ``fit = min(1, cache/ws)`` of the working set.
    """
    if reuse <= 0 or working_set < 0 or cache_bytes < 0:
        raise ValueError("reuse must be positive; sizes non-negative")
    compulsory = min(1.0, 1.0 / reuse)
    fit = 1.0 if working_set == 0 else min(1.0, cache_bytes / working_set)
    return min(1.0, compulsory + (1.0 - compulsory) * (1.0 - fit))


def libmf_dram_bytes_per_update(
    spec: DatasetSpec,
    cpu: CPUSpec,
    a: int = 100,
    threads: int = 40,
    feature_bytes: int = 4,
) -> CacheModel:
    """DRAM bytes per SGD update for LIBMF's blocked execution.

    One update touches the 12-byte sample (streamed, always DRAM), plus
    read+write of ``p_u`` and ``q_v`` (``2*k*feature_bytes`` each), weighted
    by the respective miss rates.
    """
    if a <= 0 or threads <= 0:
        raise ValueError("a and threads must be positive")
    block_rows = max(1, spec.m // a)
    block_cols = max(1, spec.n // a)
    block_nnz = max(1.0, spec.n_train / (a * a))
    reuse_p = block_nnz / block_rows
    reuse_q = block_nnz / block_cols

    row_bytes = spec.k * feature_bytes
    ws_p = block_rows * row_bytes * threads
    ws_q = block_cols * row_bytes * threads

    # allocate L3 preferentially to the matrix with the higher reuse
    l3 = cpu.l3_bytes
    if reuse_q >= reuse_p:
        give_q = min(l3, ws_q)
        miss_q = _miss_rate(reuse_q, ws_q, give_q)
        miss_p = _miss_rate(reuse_p, ws_p, l3 - give_q)
    else:
        give_p = min(l3, ws_p)
        miss_p = _miss_rate(reuse_p, ws_p, give_p)
        miss_q = _miss_rate(reuse_q, ws_q, l3 - give_p)

    vector_traffic = 2 * spec.k * feature_bytes  # read + write of one vector
    dram = SAMPLE_BYTES + vector_traffic * miss_p + vector_traffic * miss_q
    processed = SAMPLE_BYTES + 2 * vector_traffic
    return CacheModel(
        dataset=spec.name,
        a=a,
        threads=threads,
        reuse_p=reuse_p,
        reuse_q=reuse_q,
        miss_p=miss_p,
        miss_q=miss_q,
        dram_bytes_per_update=dram,
        processed_bytes_per_update=processed,
    )

"""CUDA-stream overlap simulator (§6.2-6.3).

Each worker thread drives one GPU with three streams — H2D copy, compute,
D2H copy — so the transfer of block ``b+1`` overlaps the computation of
block ``b`` (Fig. 8b). Streams serialize internally; across streams commands
run concurrently (PCIe/NVLink are full duplex, so H2D and D2H do not
contend). Device memory holds at most ``depth`` staged blocks (the paper
keeps two: one computing, one arriving), so the H2D of block ``b`` may not
start before block ``b - depth`` has been copied back.

The recurrence is the classic software pipeline::

    h2d_done[b] = max(h2d_done[b-1], d2h_done[b-depth]) + t_h2d[b]
    comp_done[b] = max(comp_done[b-1], h2d_done[b]) + t_comp[b]
    d2h_done[b] = max(d2h_done[b-1], comp_done[b]) + t_d2h[b]

yielding the epoch makespan and per-phase busy times (to quantify how much
of the transfer cost the overlap hides — the §7.3 discussion of why Hugewiki
speeds up more on NVLink).

Fault semantics: a :class:`repro.resilience.faults.FaultPlan` can be
consulted per block (the block's position in the dispatch order is its
dispatch ordinal). A planned transfer fault stretches that phase to
``(failures + 1) x duration + backoff`` — retries are *charged to simulated
time*, which is exactly where lost interconnect time hurts the §6.2
overlap. A straggler multiplies the device's compute durations. A device
killed mid-epoch truncates its dispatch list; the orphaned blocks rebalance
round-robin onto survivors in :func:`simulate_epoch_staging`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.context import active_registry, active_tracer
from repro.obs.registry import M
from repro.obs.tracer import SIM_PID
from repro.resilience.retry import RetryPolicy

__all__ = ["StagedBlock", "PipelineResult", "StreamPipeline", "simulate_epoch_staging"]

#: tid layout of one device's trace row group: one track per CUDA stream.
_STREAM_TIDS = (("H2D", 0), ("compute", 1), ("D2H", 2))


@dataclass(frozen=True)
class StagedBlock:
    """One block's phase durations in seconds."""

    h2d_seconds: float
    compute_seconds: float
    d2h_seconds: float
    label: str = ""

    def __post_init__(self) -> None:
        if min(self.h2d_seconds, self.compute_seconds, self.d2h_seconds) < 0:
            raise ValueError("phase durations must be non-negative")


@dataclass
class PipelineResult:
    """Outcome of one device's staged epoch."""

    makespan: float
    h2d_busy: float
    compute_busy: float
    d2h_busy: float
    #: (block label, h2d_done, compute_done, d2h_done) per block
    timeline: list[tuple[str, float, float, float]] = field(default_factory=list)

    @property
    def compute_utilization(self) -> float:
        """Fraction of the makespan the compute stream is busy — 1.0 means
        transfers are fully hidden."""
        return 0.0 if self.makespan == 0 else self.compute_busy / self.makespan

    @property
    def exposed_transfer(self) -> float:
        """Wall time not covered by compute (the §6.2 'perfect overlapping
        cannot be achieved' residue)."""
        return self.makespan - self.compute_busy


class StreamPipeline:
    """Three-stream pipeline for one device."""

    def __init__(self, depth: int = 2) -> None:
        if depth < 1:
            raise ValueError(f"pipeline depth must be >= 1, got {depth}")
        self.depth = depth

    def simulate(
        self,
        blocks: list[StagedBlock],
        device: int = 0,
        faults=None,
        retry: RetryPolicy | None = None,
    ) -> PipelineResult:
        """Run the recurrence over the dispatch order given.

        When a telemetry collector is active (:func:`repro.obs.activate`),
        every block's three phases become Chrome-trace spans — one track per
        CUDA stream under ``pid = SIM_PID + device`` — and the device's
        compute-overlap fraction lands in the ambient registry as
        ``repro.sim.stream.overlap_fraction``.

        ``faults`` (a :class:`repro.resilience.faults.FaultPlan`) stretches
        faulted transfer phases by their retries + backoff and applies the
        device's straggler slowdown to compute; ``retry`` bounds the
        retries (default :class:`RetryPolicy()`), raising
        :class:`~repro.resilience.faults.TransferFaultError` on exhaustion.
        """
        if faults is not None and retry is None:
            retry = RetryPolicy()
        slowdown = 1.0 if faults is None else faults.slowdown(device)
        tracer = active_tracer()
        pid = SIM_PID + device
        if tracer is not None:
            tracer.name_thread(pid, 0, f"gpu{device}:stream:H2D")
            tracer.name_thread(pid, 1, f"gpu{device}:stream:compute")
            tracer.name_thread(pid, 2, f"gpu{device}:stream:D2H")
        h2d_done: list[float] = []
        comp_done: list[float] = []
        d2h_done: list[float] = []
        timeline: list[tuple[str, float, float, float]] = []
        h2d_busy = compute_busy = d2h_busy = 0.0
        for b, blk in enumerate(blocks):
            t_h2d, t_comp, t_d2h = (
                blk.h2d_seconds, blk.compute_seconds * slowdown, blk.d2h_seconds
            )
            if faults is not None:
                f_h2d = faults.transfer_failures(device, b, "h2d")
                f_d2h = faults.transfer_failures(device, b, "d2h")
                if f_h2d:
                    outcome = retry.charge(f_h2d, what=f"h2d (device {device})")
                    t_h2d = t_h2d * outcome.attempts + outcome.backoff_seconds
                if f_d2h:
                    outcome = retry.charge(f_d2h, what=f"d2h (device {device})")
                    t_d2h = t_d2h * outcome.attempts + outcome.backoff_seconds
            h2d_busy += t_h2d
            compute_busy += t_comp
            d2h_busy += t_d2h
            h2d_ready = h2d_done[b - 1] if b >= 1 else 0.0
            if b >= self.depth:
                h2d_ready = max(h2d_ready, d2h_done[b - self.depth])
            h2d = h2d_ready + t_h2d
            comp = max(comp_done[b - 1] if b >= 1 else 0.0, h2d) + t_comp
            d2h = max(d2h_done[b - 1] if b >= 1 else 0.0, comp) + t_d2h
            h2d_done.append(h2d)
            comp_done.append(comp)
            d2h_done.append(d2h)
            label = blk.label or str(b)
            timeline.append((label, h2d, comp, d2h))
            if tracer is not None:
                for (stream, tid), done, dur in (
                    (_STREAM_TIDS[0], h2d, t_h2d),
                    (_STREAM_TIDS[1], comp, t_comp),
                    (_STREAM_TIDS[2], d2h, t_d2h),
                ):
                    tracer.add_span(
                        f"{stream} {label}",
                        done - dur,
                        dur,
                        pid=pid,
                        tid=tid,
                        cat="stream",
                        args={"block": label},
                    )
        result = PipelineResult(
            makespan=d2h_done[-1] if d2h_done else 0.0,
            h2d_busy=h2d_busy,
            compute_busy=compute_busy,
            d2h_busy=d2h_busy,
            timeline=timeline,
        )
        registry = active_registry()
        if registry is not None:
            registry.gauge(
                M.SIM_STREAM_OVERLAP_FRACTION, {"device": device}
            ).set(result.compute_utilization)
            registry.gauge(
                M.SIM_STREAM_EXPOSED_TRANSFER_SECONDS, {"device": device}
            ).set(result.exposed_transfer)
        return result


def simulate_epoch_staging(
    per_device_blocks: list[list[StagedBlock]],
    depth: int = 2,
    faults=None,
    retry: RetryPolicy | None = None,
) -> tuple[float, list[PipelineResult]]:
    """Multi-GPU epoch: devices pipeline independently; the epoch ends when
    the slowest device finishes (the epoch-boundary synchronization that
    makes Fig. 16's 2-GPU scaling sub-linear).

    With ``faults``, a device killed after ``n`` dispatches keeps only its
    first ``n`` blocks; the orphans rebalance round-robin onto surviving
    devices (appended to their dispatch lists — degraded throughput, not an
    aborted epoch). Raises
    :class:`~repro.resilience.faults.DeviceLostError` when every device is
    dead while blocks remain.
    """
    if not per_device_blocks:
        raise ValueError("need at least one device")
    if faults is not None:
        per_device_blocks = _rebalance_dead_devices(per_device_blocks, faults)
    pipeline = StreamPipeline(depth=depth)
    results = [
        pipeline.simulate(blocks, device=d, faults=faults, retry=retry)
        for d, blocks in enumerate(per_device_blocks)
    ]
    return max(r.makespan for r in results), results


def _rebalance_dead_devices(
    per_device_blocks: list[list[StagedBlock]], faults
) -> list[list[StagedBlock]]:
    """Truncate killed devices' dispatch lists and hand the orphaned blocks
    round-robin to survivors (deterministic: survivors in device order)."""
    from repro.resilience.faults import DeviceLostError

    kept: list[list[StagedBlock]] = []
    orphans: list[StagedBlock] = []
    survivors: list[int] = []
    for device, blocks in enumerate(per_device_blocks):
        killed_after = faults.killed_after(device)
        if killed_after is None:
            kept.append(list(blocks))
            survivors.append(device)
        else:
            kept.append(list(blocks[:killed_after]))
            orphans.extend(blocks[killed_after:])
    if orphans and not survivors:
        raise DeviceLostError(
            f"all {len(per_device_blocks)} devices lost with "
            f"{len(orphans)} blocks pending"
        )
    registry = active_registry()
    if registry is not None:
        dead = len(per_device_blocks) - len(survivors)
        if dead:
            registry.counter(M.RESILIENCE_DEVICE_LOST).inc(dead)
        if orphans:
            registry.counter(M.RESILIENCE_BLOCKS_REBALANCED).inc(len(orphans))
    for n, blk in enumerate(orphans):
        kept[survivors[n % len(survivors)]].append(blk)
    return kept

"""L1 cache simulator for the rating-stream reads (§4's ``__ldg`` + §5.1's
Eq. 8 locality argument).

Batch-Hogwild! exists because plain Hogwild! reads rating samples at random
addresses, wasting the 128-byte cache line each 12-byte sample rides in.
Fetching ``f`` *consecutive* samples amortizes each line across ~10.7
samples, so the condition ``f >> ceil(128/12) = 11`` (Eq. 8) makes the
rating stream effectively free.

This module simulates a small set-associative read-only cache (the Maxwell
unified L1/tex path used by ``__ldg``) over sample access traces and reports
hit rates, so Eq. 8 can be *measured*: hit rate ~= 1 - 12/128 for any large
``f`` and collapses toward 0 for random access.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CacheSimResult", "SetAssociativeCache", "rating_stream_hit_rate"]


@dataclass(frozen=True)
class CacheSimResult:
    """Hit statistics of one simulated trace."""

    accesses: int
    hits: int
    line_bytes: int

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A minimal LRU set-associative cache over byte addresses."""

    def __init__(self, size_bytes: int = 24 * 1024, line_bytes: int = 128, ways: int = 4):
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("size_bytes, line_bytes, ways must be positive")
        if size_bytes % (line_bytes * ways):
            raise ValueError("size must be a multiple of line_bytes * ways")
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = size_bytes // (line_bytes * ways)
        # per set: list of tags, most-recently-used last
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        self.hits = 0
        self.accesses = 0

    def access(self, address: int) -> bool:
        """Touch one byte address; True on hit."""
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        line = address // self.line_bytes
        idx = line % self.n_sets
        tag = line // self.n_sets
        ways = self._sets[idx]
        self.accesses += 1
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return True
        ways.append(tag)
        if len(ways) > self.ways:
            ways.pop(0)
        return False

    def result(self) -> CacheSimResult:
        return CacheSimResult(self.accesses, self.hits, self.line_bytes)


def rating_stream_hit_rate(
    n_samples: int,
    f: int,
    workers: int = 8,
    sample_bytes: int = 12,
    cache_kb: int = 24,
    seed: int = 0,
) -> CacheSimResult:
    """Simulate the rating-array access trace of batch-Hogwild!.

    ``workers`` warps interleave; each fetches runs of ``f`` consecutive
    samples starting at random chunk positions (``f = 1`` degenerates to
    plain Hogwild!'s random sampling). Returns the L1 hit statistics of the
    interleaved trace.
    """
    if n_samples <= 0 or f <= 0 or workers <= 0:
        raise ValueError("n_samples, f, workers must be positive")
    rng = np.random.default_rng(seed)
    cache = SetAssociativeCache(size_bytes=cache_kb * 1024)
    n_chunks = max(1, n_samples // f)
    # each worker walks its own random sequence of chunks
    positions = rng.integers(0, n_chunks, size=workers) * f
    offsets = np.zeros(workers, dtype=np.int64)
    total = min(n_samples, workers * f * max(1, n_samples // (workers * f)))
    for _ in range(total):
        w = int(rng.integers(0, workers))
        addr = int((positions[w] + offsets[w]) % n_samples) * sample_bytes
        cache.access(addr)
        offsets[w] += 1
        if offsets[w] == f:
            positions[w] = int(rng.integers(0, n_chunks)) * f
            offsets[w] = 0
    return cache.result()

"""Training-configuration planner.

Answers the question a cuMF_SGD user actually faces (§6.1 + §7.5): *given
this data set and these GPUs, how should I partition and how many workers
may I run?* The constraints interact:

* every block (samples + feature segments) must fit in device memory, which
  pushes the grid finer;
* the Hogwild safety rule ``s < min(m/i, n/j)/20`` pushes the grid coarser
  and the worker count lower;
* with ``g`` devices the grid needs ``min(i, j) >= g`` for independent
  blocks, and §7.6 wants at least ``2g`` to preserve ordering randomness;
* throughput wants the worker count at the occupancy cap.

:func:`plan_training` searches that space and returns the fastest modelled
configuration that satisfies every hard constraint, with warnings for the
soft ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.convergence import SAFETY_FACTOR, hogwild_safety_bound
from repro.data.synthetic import DatasetSpec
from repro.gpusim.occupancy import max_parallel_workers
from repro.gpusim.simulator import (
    cumf_throughput,
    dataset_fits_gpu,
    epoch_seconds,
    multi_gpu_epoch_seconds,
)
from repro.gpusim.specs import GPUSpec

__all__ = ["TrainingPlan", "plan_training", "block_bytes"]


def block_bytes(
    dataset: DatasetSpec, i: int, j: int, half_precision: bool = True
) -> int:
    """Worst-case device bytes of one grid block plus its feature segments."""
    if i <= 0 or j <= 0:
        raise ValueError(f"grid ({i}, {j}) must be positive")
    feature = 2 if half_precision else 4
    # uniform-density estimate with a 2x hot-block allowance
    samples = 2.0 * dataset.n_train / (i * j)
    rows = -(-dataset.m // i)
    cols = -(-dataset.n // j)
    return int(samples * 12 + (rows + cols) * dataset.k * feature)


@dataclass
class TrainingPlan:
    """One feasible configuration with its modelled cost."""

    dataset: str
    device: str
    n_devices: int
    grid: tuple[int, int]
    workers: int
    staged: bool
    epoch_seconds: float
    safety_bound: float
    warnings: list[str] = field(default_factory=list)

    @property
    def safe(self) -> bool:
        return self.workers < self.safety_bound

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        grid = f"{self.grid[0]}x{self.grid[1]}"
        return (
            f"{self.dataset} on {self.n_devices}x {self.device}: grid {grid}, "
            f"{self.workers} workers, "
            f"{'staged' if self.staged else 'resident'}, "
            f"{self.epoch_seconds:.2f}s/epoch"
            + (f"  [warnings: {'; '.join(self.warnings)}]" if self.warnings else "")
        )


def _grid_candidates(dataset: DatasetSpec, n_devices: int) -> list[tuple[int, int]]:
    """Candidate (i, j) grids: powers of two per axis, ordered coarse-first."""
    grids = []
    i = max(1, n_devices)
    while i <= 256 and i <= dataset.m:
        j = max(1, n_devices)
        while j <= 256 and j <= dataset.n:
            grids.append((i, j))
            j *= 2
        i *= 2
    grids.sort(key=lambda g: g[0] * g[1])
    return grids


def plan_training(
    dataset: DatasetSpec,
    spec: GPUSpec,
    n_devices: int = 1,
    half_precision: bool = True,
    require_safe: bool = True,
) -> TrainingPlan:
    """Pick the fastest feasible (grid, workers) configuration.

    Raises ``ValueError`` when no configuration satisfies the hard
    constraints (memory + independent blocks + at least one safe worker when
    ``require_safe``).
    """
    if n_devices <= 0:
        raise ValueError(f"n_devices must be positive, got {n_devices}")
    mem_budget = spec.mem_gb * 1e9 * 0.9  # leave headroom for the runtime
    cap = max_parallel_workers(spec)

    best: TrainingPlan | None = None
    for i, j in _grid_candidates(dataset, n_devices):
        if min(i, j) < n_devices:
            continue
        whole_fits = n_devices == 1 and i == 1 and j == 1 and dataset_fits_gpu(
            dataset, spec, half_precision
        )
        if not whole_fits and block_bytes(dataset, i, j, half_precision) > mem_budget:
            continue
        bound = hogwild_safety_bound(dataset.m, dataset.n, i, j)
        workers = min(cap, max(1, int(bound) - 1)) if require_safe else cap
        if require_safe and workers >= bound:
            continue

        if n_devices == 1 and (i, j) == (1, 1):
            seconds = epoch_seconds(spec, dataset, workers=workers,
                                    half_precision=half_precision)
            staged = not dataset_fits_gpu(dataset, spec, half_precision)
        elif n_devices == 1:
            seconds = epoch_seconds(spec, dataset, workers=workers,
                                    half_precision=half_precision,
                                    i_blocks=i, j_blocks=j)
            staged = True
        else:
            seconds = multi_gpu_epoch_seconds(spec, dataset, n_devices, i, j,
                                              half_precision=half_precision)
            staged = True

        warnings = []
        if workers < cap:
            warnings.append(
                f"workers capped at {workers} by the safety rule "
                f"(occupancy would allow {cap})"
            )
        if n_devices > 1 and min(i, j) < 2 * n_devices:
            warnings.append(
                f"grid {i}x{j} below the 2g={2 * n_devices} recommendation "
                "(§7.6: constrained block orders hurt randomness)"
            )
        plan = TrainingPlan(
            dataset=dataset.name,
            device=spec.name,
            n_devices=n_devices,
            grid=(i, j),
            workers=workers,
            staged=staged,
            epoch_seconds=seconds,
            safety_bound=bound,
            warnings=warnings,
        )
        if best is None or plan.epoch_seconds < best.epoch_seconds:
            best = plan
    if best is None:
        raise ValueError(
            f"no feasible configuration for {dataset.name} on "
            f"{n_devices}x {spec.name} (safety factor {SAFETY_FACTOR})"
        )
    return best

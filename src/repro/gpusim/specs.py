"""Hardware specifications (the paper's Table 1, plus calibration constants).

Every number that appears in the paper is taken from the paper; the few
micro-architectural constants it does not publish (DRAM achieved fraction,
atomic latency, table-scan cost per cell) are documented inline with their
physical justification and are shared by all experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "InterconnectSpec",
    "GPUSpec",
    "CPUSpec",
    "ClusterSpec",
    "PCIE3_X16",
    "NVLINK",
    "MAXWELL_TITAN_X",
    "PASCAL_P100",
    "XEON_E5_2670_DUAL",
    "NOMAD_HPC_CLUSTER",
]


@dataclass(frozen=True)
class InterconnectSpec:
    """CPU<->device link.

    ``achieved_gbs`` is what the paper *measured*: 5.5 GB/s on PCIe 3.0 x16
    and 29.1 GB/s on NVLink (§7.3), well below the respective 16 / 80 GB/s
    peaks.
    """

    name: str
    peak_gbs: float
    achieved_gbs: float
    latency_us: float = 10.0

    def transfer_seconds(self, nbytes: int | float) -> float:
        """Time to move ``nbytes`` over the link (latency + bandwidth)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        return self.latency_us * 1e-6 + nbytes / (self.achieved_gbs * 1e9)


PCIE3_X16 = InterconnectSpec("PCIe 3.0 x16", peak_gbs=16.0, achieved_gbs=5.5)
NVLINK = InterconnectSpec("NVLink", peak_gbs=80.0, achieved_gbs=29.1, latency_us=5.0)


@dataclass(frozen=True)
class GPUSpec:
    """One GPU of Table 1 plus the calibration constants of the model."""

    name: str
    sms: int
    cuda_cores_per_sm: int
    mem_gb: float
    mem_bw_gbs: float
    max_blocks_per_sm: int
    clock_ghz: float
    link: InterconnectSpec
    #: Fraction of peak DRAM bandwidth a fully-occupied streaming SGD kernel
    #: sustains. Calibrated once from the paper's own measurements: Maxwell
    #: reaches 266 of 360 GB/s (Fig. 11b) = 0.74; Pascal 567-635 of 780 GB/s
    #: = 0.73-0.81. HBM2 sustains a slightly higher fraction than GDDR5.
    achieved_bw_fraction: float = 0.74
    #: Latency of one global-memory atomic RMW (the column-lock CAS and the
    #: scheduling-table updates), ~600 ns on both generations.
    atomic_latency_us: float = 0.6
    #: Cost to scan one scheduling-table cell from a GPU worker (uncached
    #: global reads guarded by atomics inside a critical section). Calibrated
    #: so the O(a) LIBMF-GPU port saturates at ~240 blocks as the paper
    #: measures (Fig. 5b).
    table_cell_scan_us: float = 1.2
    l1_line_bytes: int = 128

    @property
    def max_resident_blocks(self) -> int:
        """Hardware limit on concurrent parallel workers: 768 on Maxwell
        (24 SMs x 32), 1792 on Pascal (56 SMs x 32) — the x-axis ceilings of
        Figs. 5b/7a/11."""
        return self.sms * self.max_blocks_per_sm

    @property
    def achieved_bw_gbs(self) -> float:
        return self.mem_bw_gbs * self.achieved_bw_fraction

    @property
    def peak_gflops(self) -> float:
        """Single-precision peak (2 flops/core/cycle FMA)."""
        return self.sms * self.cuda_cores_per_sm * self.clock_ghz * 2.0

    def per_worker_bandwidth(self) -> float:
        """Sustained bytes/s available to one resident worker.

        At full occupancy the workers exactly saturate the achieved DRAM
        bandwidth — which is why the paper's scaling curves are near-linear
        right up to the resident-block limit (Figs. 7a, 11a).
        """
        return self.achieved_bw_gbs * 1e9 / self.max_resident_blocks


MAXWELL_TITAN_X = GPUSpec(
    name="Maxwell TITAN X",
    sms=24,
    cuda_cores_per_sm=128,
    mem_gb=12.0,
    mem_bw_gbs=360.0,
    max_blocks_per_sm=32,
    clock_ghz=1.0,
    link=PCIE3_X16,
    achieved_bw_fraction=0.74,
)

PASCAL_P100 = GPUSpec(
    name="Pascal P100",
    sms=56,
    cuda_cores_per_sm=64,
    mem_gb=16.0,
    mem_bw_gbs=780.0,
    max_blocks_per_sm=32,
    clock_ghz=1.3,
    link=NVLINK,
    achieved_bw_fraction=0.78,
)


@dataclass(frozen=True)
class CPUSpec:
    """The Maxwell platform's host CPU (2 x 12-core Xeon E5-2670)."""

    name: str
    sockets: int
    cores_per_socket: int
    threads_per_core: int
    l3_mb_per_socket: float
    dram_bw_gbs: float
    clock_ghz: float
    #: Per-thread SGD update compute time with SSE at k=128; ~900 flops at
    #: 4-wide SIMD and ~3 GHz, plus address arithmetic: ~280 ns.
    update_compute_us: float = 0.28
    #: Cost per scheduling-table cell scanned inside the critical section
    #: (atomic-protected shared cache lines bounce between cores): ~10 ns.
    table_cell_scan_us: float = 0.010
    atomic_latency_us: float = 1.0

    @property
    def max_threads(self) -> int:
        return self.sockets * self.cores_per_socket * self.threads_per_core

    @property
    def physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def l3_bytes(self) -> float:
        return self.sockets * self.l3_mb_per_socket * 1e6


XEON_E5_2670_DUAL = CPUSpec(
    name="2 x Xeon E5-2670 v3",
    sockets=2,
    cores_per_socket=12,
    threads_per_core=2,
    l3_mb_per_socket=30.0,
    dram_bw_gbs=68.0,
    clock_ghz=2.3,
)


@dataclass(frozen=True)
class ClusterSpec:
    """NOMAD's 64-node HPC cluster (§7.2): 4 worker cores per node."""

    name: str
    nodes: int
    cores_per_node: int
    #: Per-node injection bandwidth of the interconnect actually achieved by
    #: NOMAD's asynchronous column-token traffic. The paper blames "the slow
    #: network" and cites [47] (InfiniBand scalability); ~1 GB/s/node of
    #: useful payload is typical for small-message async traffic on FDR IB.
    network_gbs_per_node: float
    node_cpu: CPUSpec
    network_latency_us: float = 2.0


NOMAD_HPC_CLUSTER = ClusterSpec(
    name="NOMAD 64-node HPC cluster",
    nodes=64,
    cores_per_node=4,
    network_gbs_per_node=1.0,
    node_cpu=XEON_E5_2670_DUAL,
)

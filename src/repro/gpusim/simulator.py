"""Top-level performance model: updates/s and epoch time for every solver.

Combines the roofline (memory-bandwidth ceiling), the per-worker
latency-bound regime (linear scaling), the scheduler-contention model
(Fig. 5b saturation), the CPU cache model (Fig. 2a), and the stream pipeline
(§6 staging) into the two quantities every paper experiment needs:

* ``#Updates/s`` for a (solver, device, data set, worker-count) tuple;
* seconds per epoch, including CPU-GPU staging for out-of-memory data sets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.data.synthetic import DatasetSpec
from repro.gpusim.contention import ContentionModel, scheduler_throughput
from repro.gpusim.interconnect import TransferModel
from repro.gpusim.memory import libmf_dram_bytes_per_update
from repro.gpusim.occupancy import max_parallel_workers
from repro.gpusim.specs import CPUSpec, GPUSpec
from repro.gpusim.streams import StagedBlock, StreamPipeline
from repro.metrics.flops import bytes_per_update
from repro.obs.context import active_registry
from repro.obs.registry import M

__all__ = [
    "PerfPoint",
    "cumf_throughput",
    "libmf_cpu_throughput",
    "epoch_seconds",
    "scaling_curve",
    "staged_epoch_seconds",
    "GPU_SCHEMES",
]

GPU_SCHEMES = ("batch_hogwild", "wavefront", "libmf_gpu")


def _record_perf_point(point: "PerfPoint", occupancy: float | None = None) -> None:
    """Mirror a modelled throughput point into the ambient metrics registry
    (no-op outside a :func:`repro.obs.activate` scope)."""
    registry = active_registry()
    if registry is None:
        return
    labels = {
        "solver": point.solver,
        "device": point.device,
        "dataset": point.dataset,
        "workers": point.workers,
    }
    registry.gauge(M.PERF_UPDATES_PER_SEC, labels).set(point.updates_per_sec)
    registry.gauge(M.PERF_EFFECTIVE_BANDWIDTH_GBS, labels).set(
        point.effective_bandwidth_gbs
    )
    if occupancy is not None:
        registry.gauge(
            M.SIM_OCCUPANCY_FRACTION,
            {"device": point.device, "workers": point.workers},
        ).set(occupancy)


@dataclass(frozen=True)
class PerfPoint:
    """One modelled throughput point."""

    solver: str
    device: str
    dataset: str
    workers: int
    updates_per_sec: float
    k: int
    feature_bytes: int

    @property
    def effective_bandwidth_gbs(self) -> float:
        """Bytes processed by the compute units per second (footnote 2)."""
        return (
            self.updates_per_sec
            * bytes_per_update(self.k, feature_bytes=self.feature_bytes)
            / 1e9
        )

    @property
    def mupdates(self) -> float:
        return self.updates_per_sec / 1e6


# ----------------------------------------------------------------------
# GPU side
# ----------------------------------------------------------------------
def _gpu_contention(
    scheme: str, spec: GPUSpec, a: int
) -> tuple[ContentionModel, str]:
    """Map a scheduling scheme to its contention structure."""
    if scheme == "batch_hogwild":
        return ContentionModel("batch-Hogwild!", t_critical=0.0), "batch-Hogwild!"
    if scheme == "wavefront":
        # one column-lock CAS per block, outside any critical section
        return (
            ContentionModel(
                "wavefront", t_critical=0.0, t_block_overhead=spec.atomic_latency_us * 1e-6
            ),
            "wavefront",
        )
    if scheme == "libmf_gpu":
        # the paper's O(a) port of LIBMF's scheduler: scan a rows + a columns
        # inside a critical section protected by global atomics
        t_cs = (2 * a * spec.table_cell_scan_us + spec.atomic_latency_us) * 1e-6
        return ContentionModel("LIBMF-GPU", t_critical=t_cs), "LIBMF-GPU"
    raise ValueError(f"unknown GPU scheme {scheme!r}; choose from {GPU_SCHEMES}")


def cumf_throughput(
    spec: GPUSpec,
    dataset: DatasetSpec,
    workers: int | None = None,
    scheme: str = "batch_hogwild",
    k: int | None = None,
    half_precision: bool = True,
    f: int = 256,
    a: int = 100,
) -> PerfPoint:
    """Modelled #Updates/s of cuMF_SGD (or the LIBMF GPU port) on one GPU.

    Per-worker update time is ``bytes_per_update / per-worker bandwidth
    share`` (latency-bound linear regime); the device-wide ceiling is the
    achieved-bandwidth roof. Scheduler overhead per the scheme.
    """
    k = k or dataset.k
    feature_bytes = 2 if half_precision else 4
    cap = max_parallel_workers(spec)
    w = min(workers if workers is not None else cap, cap)
    if w <= 0:
        raise ValueError(f"workers must be positive, got {w}")

    update_bytes = bytes_per_update(k, feature_bytes=feature_bytes)
    update_seconds = update_bytes / spec.per_worker_bandwidth()
    roof = spec.achieved_bw_gbs * 1e9 / update_bytes

    model, label = _gpu_contention(scheme, spec, a)
    if scheme == "batch_hogwild":
        updates_per_block = float(f)
    elif scheme == "wavefront":
        updates_per_block = max(1.0, dataset.n_train / (w * 2 * w))
    else:
        updates_per_block = max(1.0, dataset.n_train / (a * a))

    ups = scheduler_throughput(
        model, w, updates_per_block, update_seconds, bandwidth_updates_cap=roof
    )
    point = PerfPoint(
        solver=label,
        device=spec.name,
        dataset=dataset.name,
        workers=w,
        updates_per_sec=ups,
        k=k,
        feature_bytes=feature_bytes,
    )
    _record_perf_point(point, occupancy=w / cap)
    return point


# ----------------------------------------------------------------------
# CPU side (LIBMF)
# ----------------------------------------------------------------------
def libmf_cpu_throughput(
    cpu: CPUSpec,
    dataset: DatasetSpec,
    threads: int = 40,
    a: int = 100,
    k: int | None = None,
) -> PerfPoint:
    """Modelled #Updates/s of LIBMF on the host CPU.

    Per-thread compute time from the SSE cost constant; the device-wide
    memory roof uses the cache model's DRAM bytes/update; the global-table
    critical section (O(a²) scan) caps the grant rate.
    """
    k = k or dataset.k
    cache = libmf_dram_bytes_per_update(dataset, cpu, a=a, threads=threads)
    mem_roof = cpu.dram_bw_gbs * 1e9 / cache.dram_bytes_per_update
    t_cs = (a * a * cpu.table_cell_scan_us + cpu.atomic_latency_us) * 1e-6
    model = ContentionModel("LIBMF", t_critical=t_cs)
    updates_per_block = max(1.0, dataset.n_train / (a * a))
    ups = scheduler_throughput(
        model,
        min(threads, cpu.max_threads),
        updates_per_block,
        cpu.update_compute_us * 1e-6,
        bandwidth_updates_cap=mem_roof,
    )
    point = PerfPoint(
        solver="LIBMF",
        device=cpu.name,
        dataset=dataset.name,
        workers=threads,
        updates_per_sec=ups,
        k=k,
        feature_bytes=4,
    )
    _record_perf_point(point)
    return point


# ----------------------------------------------------------------------
# epoch time, with staging for out-of-memory data sets
# ----------------------------------------------------------------------
def dataset_fits_gpu(dataset: DatasetSpec, spec: GPUSpec, half_precision: bool = True) -> bool:
    """§6 sizing: can COO samples + both feature matrices reside on device?"""
    need = dataset.coo_bytes + dataset.feature_bytes(half_precision)
    return need <= spec.mem_gb * 1e9


def staged_epoch_seconds(
    spec: GPUSpec,
    dataset: DatasetSpec,
    updates_per_sec: float,
    i_blocks: int = 64,
    j_blocks: int = 1,
    depth: int = 2,
    half_precision: bool = True,
) -> float:
    """Epoch time when R must be staged in ``i x j`` blocks (§6.2).

    The paper's Hugewiki configuration: 64 x 1 blocks, two resident, H2D of
    block b+1 overlapped with compute of block b via three CUDA streams.
    """
    if updates_per_sec <= 0:
        raise ValueError("updates_per_sec must be positive")
    feature_bytes = 2 if half_precision else 4
    transfer = TransferModel(spec.link, k=dataset.k, feature_bytes=feature_bytes)
    block_nnz = dataset.n_train / (i_blocks * j_blocks)
    block_rows = dataset.m // i_blocks
    block_cols = dataset.n // j_blocks
    blocks = [
        StagedBlock(
            h2d_seconds=transfer.shape_h2d_seconds(int(block_nnz), block_rows, block_cols),
            compute_seconds=block_nnz / updates_per_sec,
            d2h_seconds=transfer.shape_d2h_seconds(block_rows, block_cols),
            label=f"b{b}",
        )
        for b in range(i_blocks * j_blocks)
    ]
    return StreamPipeline(depth=depth).simulate(blocks).makespan


def epoch_seconds(
    spec: GPUSpec,
    dataset: DatasetSpec,
    workers: int | None = None,
    scheme: str = "batch_hogwild",
    half_precision: bool = True,
    i_blocks: int = 64,
    j_blocks: int = 1,
) -> float:
    """Seconds per full pass over the data set on one GPU.

    In-memory data sets: pure compute. Out-of-memory: the staged pipeline.
    """
    point = cumf_throughput(
        spec, dataset, workers=workers, scheme=scheme, half_precision=half_precision
    )
    if dataset_fits_gpu(dataset, spec, half_precision):
        return dataset.n_train / point.updates_per_sec
    return staged_epoch_seconds(
        spec,
        dataset,
        point.updates_per_sec,
        i_blocks=i_blocks,
        j_blocks=j_blocks,
        half_precision=half_precision,
    )


def multi_gpu_epoch_seconds(
    spec: GPUSpec,
    dataset: DatasetSpec,
    n_gpus: int,
    i_blocks: int,
    j_blocks: int,
    half_precision: bool = True,
) -> float:
    """Epoch time with ``n_gpus`` pulling independent blocks (§6.1, Fig. 16).

    Each scheduling round dispatches one independent block per GPU: the
    feature segments move host-to-device (overlapped with the previous
    round's compute up to the pipeline depth), the block computes, and the
    segments return before the next round may reuse them — the CPU-GPU
    synchronization the paper blames for Fig. 16's sub-linear 1.5x scaling.
    Rating blocks are staged too when the data set exceeds device memory.
    """
    if n_gpus <= 0:
        raise ValueError(f"n_gpus must be positive, got {n_gpus}")
    if n_gpus > min(i_blocks, j_blocks):
        raise ValueError(
            f"{n_gpus} GPUs need an independent block each; grid "
            f"({i_blocks}, {j_blocks}) supports at most {min(i_blocks, j_blocks)}"
        )
    point = cumf_throughput(spec, dataset, half_precision=half_precision)
    if n_gpus == 1:
        return epoch_seconds(
            spec, dataset, half_precision=half_precision,
            i_blocks=i_blocks, j_blocks=j_blocks,
        )
    feature_bytes = 2 if half_precision else 4
    total_blocks = i_blocks * j_blocks
    rounds = math.ceil(total_blocks / n_gpus)
    block_nnz = dataset.n_train / total_blocks
    seg_bytes = (dataset.m // i_blocks + dataset.n // j_blocks) * dataset.k * feature_bytes
    h2d_bytes = seg_bytes
    if not dataset_fits_gpu(dataset, spec, half_precision):
        h2d_bytes += block_nnz * 12
    h2d = spec.link.transfer_seconds(h2d_bytes)
    d2h = spec.link.transfer_seconds(seg_bytes)
    compute = block_nnz / point.updates_per_sec
    # H2D overlaps the previous round's compute; D2H is the synchronization
    # tail the segment hand-back imposes before the next round.
    per_round = max(compute, h2d) + d2h
    return rounds * per_round


def scaling_curve(
    spec: GPUSpec,
    dataset: DatasetSpec,
    scheme: str = "batch_hogwild",
    workers_list: list[int] | None = None,
    **kwargs,
) -> list[PerfPoint]:
    """Throughput over a sweep of worker counts (Figs. 5b, 7a, 11)."""
    cap = max_parallel_workers(spec)
    if workers_list is None:
        workers_list = sorted(
            {max(1, int(cap * frac)) for frac in (0.05, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0)}
        )
    bad = [w for w in workers_list if w <= 0]
    if bad:
        raise ValueError(f"worker counts must be positive, got {bad}")
    return [
        cumf_throughput(spec, dataset, workers=w, scheme=scheme, **kwargs)
        for w in workers_list
    ]

"""Roofline model (§2.3 / Eq. 4-5).

The paper's workload characterization: one SGD update has arithmetic
intensity ≈ 0.43 flops/byte at k=128 while processors balance at ~10, so
SGD-based MF sits far under the memory roof. This module evaluates the
classic roofline ``attainable = min(peak_flops, intensity x bandwidth)`` for
any device spec and update configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.specs import CPUSpec, GPUSpec
from repro.metrics.flops import bytes_per_update, flops_byte_ratio, flops_per_update

__all__ = ["RooflinePoint", "attainable_flops", "roofline_point", "machine_balance"]


@dataclass(frozen=True)
class RooflinePoint:
    """Where one kernel configuration lands on a device's roofline."""

    device: str
    k: int
    feature_bytes: int
    intensity: float
    peak_gflops: float
    bandwidth_gbs: float
    attainable_gflops: float
    memory_bound: bool
    #: Updates/s implied by the memory roof alone (the model's headline).
    bandwidth_bound_updates_per_sec: float

    @property
    def efficiency(self) -> float:
        """Attainable / peak flops — how much silicon the workload can use."""
        return self.attainable_gflops / self.peak_gflops


def machine_balance(peak_gflops: float, bandwidth_gbs: float) -> float:
    """Flops/byte at which a device transitions memory- to compute-bound."""
    if bandwidth_gbs <= 0:
        raise ValueError("bandwidth must be positive")
    return peak_gflops / bandwidth_gbs


def attainable_flops(
    intensity: float, peak_gflops: float, bandwidth_gbs: float
) -> float:
    """The roofline: ``min(peak, intensity x bandwidth)`` in GFLOP/s."""
    if intensity <= 0:
        raise ValueError(f"intensity must be positive, got {intensity}")
    return min(peak_gflops, intensity * bandwidth_gbs)


def roofline_point(
    device: GPUSpec | CPUSpec,
    k: int = 128,
    feature_bytes: int = 4,
) -> RooflinePoint:
    """Evaluate the SGD-MF kernel on a device's roofline.

    For a GPU the bandwidth is the *achieved* DRAM bandwidth; for a CPU the
    DRAM bandwidth (cache effects are handled separately by
    :mod:`repro.gpusim.memory`).
    """
    if isinstance(device, GPUSpec):
        bw = device.achieved_bw_gbs
        peak = device.peak_gflops
        name = device.name
    else:
        bw = device.dram_bw_gbs
        # 4-wide SSE FMA per core as in LIBMF
        peak = device.physical_cores * device.clock_ghz * 8.0
        name = device.name
    intensity = flops_byte_ratio(k, feature_bytes=feature_bytes)
    attain = attainable_flops(intensity, peak, bw)
    balance = machine_balance(peak, bw)
    return RooflinePoint(
        device=name,
        k=k,
        feature_bytes=feature_bytes,
        intensity=intensity,
        peak_gflops=peak,
        bandwidth_gbs=bw,
        attainable_gflops=attain,
        memory_bound=intensity < balance,
        bandwidth_bound_updates_per_sec=bw * 1e9 / bytes_per_update(k, feature_bytes=feature_bytes),
    )

"""Cost-efficiency model (§7.2: "not only faster ... also more cost-efficient").

The paper's comparison pits one GPU card against a 64-node HPC cluster and a
dual-socket server. This module attaches hardware cost rates to each
platform so time-to-converge can be converted into a cost-to-converge — the
"Faster and Cheaper" argument of the cuMF line of work.

Rates are amortized acquisition cost per hour (3-year straight-line, 2017
list prices) plus a power/hosting adder; they are deliberately coarse —
the claim being checked is an order-of-magnitude one.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PlatformCost", "PLATFORM_COSTS", "cost_to_converge"]


@dataclass(frozen=True)
class PlatformCost:
    """Hourly cost of one execution platform."""

    name: str
    #: amortized hardware $/hour
    hardware_per_hour: float
    #: power + hosting $/hour
    overhead_per_hour: float

    @property
    def per_hour(self) -> float:
        return self.hardware_per_hour + self.overhead_per_hour

    def cost(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        return self.per_hour * seconds / 3600.0


#: 2017-era coarse rates. A TITAN X card was ~$1k, a P100 ~$6k (plus host
#: share), a dual-Xeon server ~$8k, and a 64-node InfiniBand cluster with
#: 4-core nodes ~$300k+ — each amortized over 3 years (~26k hours).
PLATFORM_COSTS: dict[str, PlatformCost] = {
    "maxwell-gpu": PlatformCost("1x TITAN X + host share", 0.12, 0.05),
    "pascal-gpu": PlatformCost("1x P100 + host share", 0.35, 0.06),
    "cpu-server": PlatformCost("2x Xeon E5-2670 server", 0.30, 0.08),
    "hpc-cluster-32": PlatformCost("32-node HPC cluster", 4.80, 1.60),
    "hpc-cluster-64": PlatformCost("64-node HPC cluster", 9.60, 3.20),
}


def cost_to_converge(platform: str, seconds: float) -> float:
    """Dollars to run ``seconds`` of training on a named platform."""
    try:
        rate = PLATFORM_COSTS[platform]
    except KeyError:
        raise KeyError(
            f"unknown platform {platform!r}; choose from {sorted(PLATFORM_COSTS)}"
        ) from None
    return rate.cost(seconds)

"""Scheduler-contention model — the mechanism behind Fig. 5b.

LIBMF grants blocks out of a global table inside a critical section. Model
it as a closed queueing system: each of ``w`` workers cycles through

    [critical section: t_cs]  →  [process one block: t_block]

where the critical section is serialized across workers. Standard closed
M/D/1-style bounds give aggregate grant rate::

    grants/s = min( w / (t_cs + t_block),  1 / t_cs )

and updates/s = grants/s x updates_per_block. The first term is the
linear-scaling regime; the second is the serialization ceiling whose knee is
at ``w* = (t_cs + t_block) / t_cs`` — calibrated constants put w* ≈ 30 for
CPU LIBMF (matching the paper's "saturates around 30 threads") and ≈ 240 for
the O(a) GPU port ("scales to only 240 thread blocks").

Wavefront and batch-Hogwild! have no global critical section: their per-block
overhead (one column-lock CAS, or nothing) is charged to t_block instead, so
they scale to the occupancy limit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ContentionModel", "scheduler_throughput"]


@dataclass(frozen=True)
class ContentionModel:
    """One scheduling policy's cost structure."""

    name: str
    #: critical-section time per grant (seconds); 0 = lock-free
    t_critical: float
    #: per-block overhead outside the critical section (e.g. column-lock CAS)
    t_block_overhead: float = 0.0

    def saturation_workers(self, t_block: float) -> float:
        """Worker count ``w*`` where the serialization ceiling binds."""
        if self.t_critical <= 0:
            return float("inf")
        return (self.t_critical + t_block + self.t_block_overhead) / self.t_critical


def scheduler_throughput(
    model: ContentionModel,
    workers: int,
    updates_per_block: float,
    update_seconds: float,
    bandwidth_updates_cap: float = float("inf"),
) -> float:
    """Aggregate updates/s under a scheduling policy.

    Parameters
    ----------
    updates_per_block:
        SGD updates granted per scheduler interaction (block nnz; for
        batch-Hogwild! the chunk size ``f``).
    update_seconds:
        Per-worker time to execute one update (latency-bound regime).
    bandwidth_updates_cap:
        Device-wide memory-bandwidth roof in updates/s; the final throughput
        is also clipped by it.
    """
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    if updates_per_block <= 0 or update_seconds <= 0:
        raise ValueError("updates_per_block and update_seconds must be positive")
    t_block = updates_per_block * update_seconds + model.t_block_overhead
    cycle = t_block + model.t_critical
    grant_rate = workers / cycle
    if model.t_critical > 0:
        grant_rate = min(grant_rate, 1.0 / model.t_critical)
    return min(grant_rate * updates_per_block, bandwidth_updates_cap)

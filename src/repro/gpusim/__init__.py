"""GPU/CPU performance-model substrate.

This package replaces the paper's Maxwell TITAN X / Pascal P100 testbeds,
which are unavailable here. Every throughput claim in the paper is a
bandwidth/roofline argument: SGD-based MF moves ~2 KB per update and does
~900 flops (Eq. 5), so performance is *effective memory bandwidth divided by
bytes-per-update*, corrected for scheduler overhead and occupancy. The model
implements exactly that argument with the paper's published hardware
parameters (Table 1), so it reproduces the paper's throughput figures
(5b, 7a, 10, 11), tables (4, 5), and the staging analysis of §6.

Calibration constants are documented at their definition sites; each has a
physical interpretation (DRAM achieved fraction, critical-section cell-scan
cost, atomic latency) and is shared across all experiments — nothing is
fitted per figure.
"""

from repro.gpusim.specs import (
    CPUSpec,
    ClusterSpec,
    GPUSpec,
    InterconnectSpec,
    MAXWELL_TITAN_X,
    NOMAD_HPC_CLUSTER,
    NVLINK,
    PASCAL_P100,
    PCIE3_X16,
    XEON_E5_2670_DUAL,
)
from repro.gpusim.roofline import RooflinePoint, attainable_flops, roofline_point
from repro.gpusim.memory import CacheModel, libmf_dram_bytes_per_update
from repro.gpusim.occupancy import max_parallel_workers, occupancy_fraction
from repro.gpusim.contention import (
    ContentionModel,
    scheduler_throughput,
)
from repro.gpusim.interconnect import TransferModel
from repro.gpusim.streams import StagedBlock, StreamPipeline, simulate_epoch_staging
from repro.gpusim.simulator import (
    PerfPoint,
    cumf_throughput,
    epoch_seconds,
    libmf_cpu_throughput,
    scaling_curve,
)

__all__ = [
    "GPUSpec",
    "CPUSpec",
    "ClusterSpec",
    "InterconnectSpec",
    "MAXWELL_TITAN_X",
    "PASCAL_P100",
    "XEON_E5_2670_DUAL",
    "NOMAD_HPC_CLUSTER",
    "PCIE3_X16",
    "NVLINK",
    "RooflinePoint",
    "roofline_point",
    "attainable_flops",
    "CacheModel",
    "libmf_dram_bytes_per_update",
    "max_parallel_workers",
    "occupancy_fraction",
    "ContentionModel",
    "scheduler_throughput",
    "TransferModel",
    "StagedBlock",
    "StreamPipeline",
    "simulate_epoch_staging",
    "PerfPoint",
    "cumf_throughput",
    "libmf_cpu_throughput",
    "epoch_seconds",
    "scaling_curve",
]

"""LIBMF's centralized scheduling table (Fig. 5a).

The rating matrix is divided into ``a x a`` blocks; a global table tracks
which blocks are currently being updated and which rows/columns are busy.
When a worker goes idle it enters a critical section, scans the table for an
*independent* block (no busy row, no busy column), claims it, and leaves.

Two scan policies are modelled, matching §5:

* ``"table"``  — LIBMF's original O(a²) full-table scan;
* ``"rowcol"`` — the paper's GPU port: scan the ``a`` rows and ``a`` columns
  first, then pick a random block in the free rows x free columns (O(a)).

The class also counts scan work (table cells visited), which feeds the
contention model that reproduces Fig. 5b's saturation at ~30 CPU threads /
~240 GPU thread blocks.

LIBMF additionally prefers less-frequently-updated blocks to keep epoch
coverage balanced; we implement that as the default tie-break.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GlobalScheduleTable"]


class GlobalScheduleTable:
    """Global ``a x a`` block scheduling table with busy-row/column tracking."""

    def __init__(
        self,
        a: int,
        policy: str = "table",
        prefer_low_count: bool = True,
        seed: int = 0,
    ) -> None:
        if a <= 0:
            raise ValueError(f"grid size a must be positive, got {a}")
        if policy not in ("table", "rowcol"):
            raise ValueError(f"unknown policy {policy!r}; use 'table' or 'rowcol'")
        self.a = a
        self.policy = policy
        self.prefer_low_count = prefer_low_count
        self._rng = np.random.default_rng(seed)
        self._busy_row = np.zeros(a, dtype=bool)
        self._busy_col = np.zeros(a, dtype=bool)
        self._in_flight: dict[int, tuple[int, int]] = {}
        #: times each block has been granted this epoch (LIBMF balance heuristic)
        self.update_counts = np.zeros((a, a), dtype=np.int64)
        #: total table cells visited across all acquires (contention proxy)
        self.scan_work = 0
        #: number of successful grants
        self.grants = 0

    # ------------------------------------------------------------------
    @property
    def busy_rows(self) -> np.ndarray:
        return self._busy_row.copy()

    @property
    def busy_cols(self) -> np.ndarray:
        return self._busy_col.copy()

    @property
    def n_in_flight(self) -> int:
        return len(self._in_flight)

    def free_blocks(self) -> np.ndarray:
        """Boolean a x a mask of blocks that could be granted right now."""
        return ~self._busy_row[:, None] & ~self._busy_col[None, :]

    # ------------------------------------------------------------------
    def acquire(self, worker: int) -> tuple[int, int] | None:
        """Claim an independent block for ``worker``; None when all busy.

        Models the critical-section scan and records its cost in
        :attr:`scan_work`.
        """
        if worker in self._in_flight:
            raise RuntimeError(f"worker {worker} already holds block {self._in_flight[worker]}")
        if self.policy == "table":
            self.scan_work += self.a * self.a
        else:
            self.scan_work += 2 * self.a

        free = self.free_blocks()
        if not free.any():
            return None
        bi_idx, bj_idx = np.nonzero(free)
        if self.prefer_low_count:
            counts = self.update_counts[bi_idx, bj_idx]
            candidates = np.nonzero(counts == counts.min())[0]
        else:
            candidates = np.arange(len(bi_idx))
        pick = int(self._rng.choice(candidates))
        block = (int(bi_idx[pick]), int(bj_idx[pick]))
        self._busy_row[block[0]] = True
        self._busy_col[block[1]] = True
        self._in_flight[worker] = block
        self.update_counts[block] += 1
        self.grants += 1
        return block

    def release(self, worker: int) -> None:
        """Return the worker's block to the free pool."""
        try:
            bi, bj = self._in_flight.pop(worker)
        except KeyError:
            raise RuntimeError(f"worker {worker} holds no block") from None
        self._busy_row[bi] = False
        self._busy_col[bj] = False

    def reset_epoch(self) -> None:
        """Clear the per-epoch balance counters (busy state persists)."""
        self.update_counts[:] = 0

    # ------------------------------------------------------------------
    def scan_cost_cells(self) -> int:
        """Cells visited per acquire under the configured policy."""
        return self.a * self.a if self.policy == "table" else 2 * self.a

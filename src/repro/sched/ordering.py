"""Feasible block-update-order enumeration (Fig. 15).

The paper's §7.6 argument: divide R into ``a x a`` blocks and run ``s``
parallel workers that must always be busy. An *update order* is a sequence
listing each block once. An order is **feasible** when it can be realized by
the greedy scheduler — whenever a worker frees up, it immediately takes the
next block in the order, and at every instant the in-flight blocks must be
pairwise independent (Eq. 6).

For a 2x2 grid and s = 2 workers, 8 of the 24 permutations are feasible —
the paper's exact numbers — so constrained orders reduce update randomness,
which is why convergence deteriorates once ``a`` approaches ``s`` (Fig. 14).

Feasibility rule: with ``s`` always-busy workers and equal block durations,
execution proceeds in *rounds* of ``s`` concurrently-running blocks, so an
order is realizable iff every consecutive group of ``s`` blocks is pairwise
independent (Eq. 6). This is exactly the paper's argument: "when Block 1 is
issued to one worker, only Block 4 can be issued to another worker. Hence,
Blocks 2 and 3 cannot be updated between 1 and 4."
"""

from __future__ import annotations

from itertools import permutations
from math import factorial
from typing import Iterator

__all__ = [
    "enumerate_feasible_orders",
    "count_feasible_orders",
    "feasible_order_fraction",
    "is_feasible_order",
]

Block = tuple[int, int]


def _grid_blocks(a: int) -> list[Block]:
    return [(i, j) for i in range(a) for j in range(a)]


def is_feasible_order(order: list[Block], workers: int) -> bool:
    """True when the order keeps ``workers`` busy without Eq. 6 conflicts.

    The order is executed in rounds of ``workers`` concurrent blocks; every
    round must be pairwise independent.
    """
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    for lo in range(0, len(order), workers):
        group = order[lo : lo + workers]
        rows = [b[0] for b in group]
        cols = [b[1] for b in group]
        if len(set(rows)) != len(rows) or len(set(cols)) != len(cols):
            return False
    return True


def enumerate_feasible_orders(a: int, workers: int) -> Iterator[list[Block]]:
    """Yield every feasible update order of the ``a x a`` grid.

    Exhaustive over ``(a²)!`` permutations — intended for the small grids of
    the Fig. 15 analysis (a ≤ 3).
    """
    if a > 3:
        raise ValueError(
            f"enumeration over ({a * a})! permutations is intractable; use a <= 3"
        )
    for perm in permutations(_grid_blocks(a)):
        order = list(perm)
        if is_feasible_order(order, workers):
            yield order


def count_feasible_orders(a: int, workers: int) -> tuple[int, int]:
    """(feasible, total) order counts. For a=2, s=2 returns (8, 24)."""
    total = factorial(a * a)
    feasible = sum(1 for _ in enumerate_feasible_orders(a, workers))
    return feasible, total


def feasible_order_fraction(a: int, workers: int) -> float:
    """Fraction of update orders the scheduler can realize.

    The paper's randomness argument: this fraction collapses as ``workers``
    approaches ``a``, so the effective update sequence becomes nearly
    deterministic and convergence suffers (Fig. 14).
    """
    feasible, total = count_feasible_orders(a, workers)
    return feasible / total

"""Shared scheduling machinery.

* :mod:`repro.sched.conflict` — the independence predicate of Eq. 6 and
  collision statistics for waves of concurrent updates.
* :mod:`repro.sched.table` — LIBMF's global ``a x a`` scheduling table
  (Fig. 5a), including the O(a²) scan cost the paper measures.
* :mod:`repro.sched.column_lock` — the wavefront 1-D column-lock array
  (Fig. 6) that replaces the 2-D table.
* :mod:`repro.sched.ordering` — feasible block-update-order enumeration,
  reproducing the 8-of-24 example of Fig. 15.
* :mod:`repro.sched.plan` — compiled epoch plans: the batch-Hogwild! wave
  schedule as one cached index matrix, and the conflict-free serial
  segmentation behind per-worker replay.
"""

from repro.sched.column_lock import ColumnLockArray
from repro.sched.conflict import (
    collision_fraction,
    count_conflicts,
    expected_collision_fraction,
    independent,
    wave_is_conflict_free,
)
from repro.sched.plan import EpochPlan, PlanStats, SerialPlan
from repro.sched.ordering import (
    count_feasible_orders,
    enumerate_feasible_orders,
    feasible_order_fraction,
)
from repro.sched.table import GlobalScheduleTable

__all__ = [
    "independent",
    "count_conflicts",
    "collision_fraction",
    "expected_collision_fraction",
    "wave_is_conflict_free",
    "GlobalScheduleTable",
    "ColumnLockArray",
    "EpochPlan",
    "SerialPlan",
    "PlanStats",
    "enumerate_feasible_orders",
    "count_feasible_orders",
    "feasible_order_fraction",
]

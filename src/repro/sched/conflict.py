"""Independence predicate and collision statistics.

Eq. 6 of the paper: two updates on samples ``r_{u1,v1}`` and ``r_{u2,v2}``
may run simultaneously iff ``u1 != u2 and v1 != v2``. A wave of concurrent
updates that violates this for some pair is said to contain *conflicts* —
the quantity whose growth with ``s / min(m, n)`` destroys Hogwild
convergence (§7.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "independent",
    "count_conflicts",
    "collision_fraction",
    "expected_collision_fraction",
    "wave_is_conflict_free",
    "ConflictCounter",
]


def independent(u1: int, v1: int, u2: int, v2: int) -> bool:
    """Eq. 6: True when the two updates touch disjoint feature rows."""
    return u1 != u2 and v1 != v2


def count_conflicts(rows: np.ndarray, cols: np.ndarray) -> int:
    """Number of samples in the wave that collide with an earlier sample.

    A sample collides when its row OR its column already appeared earlier in
    the wave. This is the number of updates that would be lost or stale under
    racing execution.
    """
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    if rows.shape != cols.shape:
        raise ValueError("rows and cols must have the same shape")
    seen_rows: set[int] = set()
    seen_cols: set[int] = set()
    conflicts = 0
    for u, v in zip(rows.tolist(), cols.tolist()):
        if u in seen_rows or v in seen_cols:
            conflicts += 1
        seen_rows.add(u)
        seen_cols.add(v)
    return conflicts


def _count_conflicts_vectorized(rows: np.ndarray, cols: np.ndarray) -> int:
    """Exact number of conflicting samples in a wave, O(s log s).

    Same quantity as :func:`count_conflicts` (samples whose row duplicates an
    earlier row or whose column duplicates an earlier column), computed from
    first-occurrence masks instead of a Python loop.
    """
    s = len(rows)
    if s == 0:
        return 0
    first_row = np.zeros(s, dtype=bool)
    first_col = np.zeros(s, dtype=bool)
    first_row[np.unique(rows, return_index=True)[1]] = True
    first_col[np.unique(cols, return_index=True)[1]] = True
    return int(np.count_nonzero(~(first_row & first_col)))


def collision_fraction(rows: np.ndarray, cols: np.ndarray) -> float:
    """Fraction of the wave's updates that conflict (vectorized).

    Counts samples whose row is a duplicate of an earlier row or whose column
    duplicates an earlier column — identical to
    ``count_conflicts / len(wave)`` but O(s log s).
    """
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    s = len(rows)
    if s == 0:
        return 0.0
    return _count_conflicts_vectorized(rows, cols) / s


def expected_collision_fraction(s: int, m: int, n: int) -> float:
    """Analytic expected collision fraction of a uniform random wave.

    With ``s`` workers drawing rows uniformly from ``m`` values and columns
    from ``n``, the chance a sample's row is fresh is ``((m-1)/m)^(i)`` for
    the i-th sample; averaging over the wave gives the closed form below.
    This is what makes the paper's ``s ≪ min(m, n)`` rule quantitative.
    """
    if s <= 0:
        return 0.0
    if m <= 0 or n <= 0:
        raise ValueError("m and n must be positive")
    i = np.arange(s, dtype=np.float64)  # lint: fp64-accumulator -- closed-form probability, not on the kernel path
    fresh = ((m - 1) / m) ** i * ((n - 1) / n) ** i
    return float(1.0 - fresh.mean())


def wave_is_conflict_free(rows: np.ndarray, cols: np.ndarray) -> bool:
    """True when no pair in the wave violates Eq. 6."""
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    return len(np.unique(rows)) == len(rows) and len(np.unique(cols)) == len(cols)


@dataclass
class ConflictCounter:
    """Running Eq. 6 conflict accounting across many waves.

    The §7.5 convergence argument is about a *rate* — how often concurrent
    updates touch the same feature row as ``s`` approaches ``min(m, n)``.
    This counter accumulates it over an epoch (or a whole run) instead of
    one wave at a time:

    ``attempts``
        samples observed (each sample in a wave is one attempted update);
    ``conflicts``
        samples whose row or column duplicated an earlier sample in the
        same wave — the updates lost or stale under racing execution;
    ``aborts``
        waves abandoned wholesale (a scheduler may drop a wave rather than
        execute it when the conflict check fails).
    """

    attempts: int = 0
    conflicts: int = 0
    aborts: int = 0
    waves: int = 0

    def observe_wave(self, rows: np.ndarray, cols: np.ndarray) -> float:
        """Accumulate one wave; returns its collision fraction.

        The conflict *count* is computed exactly (vectorized) and the
        fraction derived from it — never reconstructed from a rounded
        float, so ``conflicts`` always equals the sum of per-wave
        :func:`count_conflicts` values.
        """
        rows = np.asarray(rows)
        cols = np.asarray(cols)
        n = len(rows)
        conflicts = _count_conflicts_vectorized(rows, cols)
        self.attempts += n
        self.conflicts += conflicts
        self.waves += 1
        return conflicts / n if n else 0.0

    def abort_wave(self, n_samples: int) -> None:
        """Record a wave dropped before execution (its samples count as
        attempts but not conflicts)."""
        if n_samples < 0:
            raise ValueError(f"n_samples must be non-negative, got {n_samples}")
        self.attempts += n_samples
        self.aborts += 1
        self.waves += 1

    @property
    def conflict_rate(self) -> float:
        """Conflicting fraction of all attempted updates."""
        return self.conflicts / self.attempts if self.attempts else 0.0

    def merge(self, other: "ConflictCounter") -> "ConflictCounter":
        self.attempts += other.attempts
        self.conflicts += other.conflicts
        self.aborts += other.aborts
        self.waves += other.waves
        return self

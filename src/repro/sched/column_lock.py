"""Wavefront column-lock array (Fig. 6).

The wavefront scheme replaces LIBMF's 2-D global table with a 1-D array of
per-column locks. Each parallel worker owns one *row* of the block grid
permanently, so only columns need arbitration: before moving to the next
block in its private column permutation, a worker checks (and atomically
claims) exactly one entry of this array — an O(1) local lookup instead of an
O(a²) global scan.

The implementation is deliberately explicit about the two operations a GPU
worker performs — ``try_acquire`` (atomicCAS on the column flag) and
``release`` (store) — and counts both, so the contention model can charge
their cost.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

__all__ = ["ColumnLockArray", "LockContentionStats"]


@dataclass(frozen=True)
class LockContentionStats:
    """Snapshot of one lock array's contention counters.

    ``attempts``
        every ``try_acquire`` call (successful or not);
    ``waits``
        failed acquisitions — the worker found the column held and must
        retry (the Fig. 6 wait events);
    ``aborts``
        workers that gave up on a column via :meth:`ColumnLockArray.abort`
        instead of retrying (used by schedulers that reorder on contention);
    ``releases``
        completed block hand-backs.
    """

    attempts: int = 0
    waits: int = 0
    aborts: int = 0
    releases: int = 0

    @property
    def wait_fraction(self) -> float:
        """Fraction of acquire attempts that hit a held column."""
        return self.waits / self.attempts if self.attempts else 0.0

    def __add__(self, other: "LockContentionStats") -> "LockContentionStats":
        return LockContentionStats(
            self.attempts + other.attempts,
            self.waits + other.waits,
            self.aborts + other.aborts,
            self.releases + other.releases,
        )


class ColumnLockArray:
    """Array of per-column locks with owner tracking.

    Thread-safe: ``try_acquire`` / ``release`` may be called from real Python
    threads (the threaded executor uses this) as well as from the
    deterministic simulator.
    """

    def __init__(self, n_columns: int) -> None:
        if n_columns <= 0:
            raise ValueError(f"n_columns must be positive, got {n_columns}")
        self.n_columns = n_columns
        self._owner = np.full(n_columns, -1, dtype=np.int64)
        self._mutex = threading.Lock()
        #: total acquire attempts (successful or not) — contention proxy
        self.attempts = 0
        #: failed acquire attempts (the wait events of Fig. 6)
        self.contended = 0
        #: workers that gave up on a held column rather than retrying
        self.aborts = 0
        #: completed releases
        self.releases = 0

    @property
    def waits(self) -> int:
        """Alias for :attr:`contended` under the repro.* naming scheme."""
        return self.contended

    def stats(self) -> LockContentionStats:
        """Consistent snapshot of the contention counters."""
        with self._mutex:
            return LockContentionStats(
                attempts=self.attempts,
                waits=self.contended,
                aborts=self.aborts,
                releases=self.releases,
            )

    def try_acquire(self, column: int, worker: int) -> bool:
        """Atomically claim ``column`` for ``worker``; False when held.

        Equivalent to ``atomicCAS(&lock[column], FREE, worker)`` on the GPU.
        """
        self._check(column, worker)
        with self._mutex:
            self.attempts += 1
            if self._owner[column] != -1:
                self.contended += 1
                return False
            self._owner[column] = worker
            return True

    def abort(self, column: int, worker: int) -> None:
        """Record ``worker`` abandoning its claim attempt on a held column.

        A scheduler that reorders around contention (instead of spinning on
        the same column) calls this so abandonment is distinguishable from a
        plain wait-and-retry in the contention accounting. The column must
        currently be held by a *different* worker.
        """
        self._check(column, worker)
        with self._mutex:
            owner = int(self._owner[column])
            if owner == worker:
                raise RuntimeError(
                    f"worker {worker} aborting column {column} it already owns"
                )
            if owner == -1:
                raise RuntimeError(
                    f"worker {worker} aborting free column {column}; "
                    "abort only applies to held columns"
                )
            self.aborts += 1

    def release(self, column: int, worker: int) -> None:
        """Release a column previously acquired by the same worker."""
        self._check(column, worker)
        with self._mutex:
            if self._owner[column] != worker:
                raise RuntimeError(
                    f"worker {worker} releasing column {column} owned by "
                    f"{int(self._owner[column])}"
                )
            self._owner[column] = -1
            self.releases += 1

    def owner(self, column: int) -> int:
        """Current owner of the column, or -1 when free."""
        if not 0 <= column < self.n_columns:
            raise IndexError(f"column {column} outside [0, {self.n_columns})")
        return int(self._owner[column])

    def held_columns(self) -> np.ndarray:
        """Indices of currently held columns."""
        return np.nonzero(self._owner >= 0)[0]

    def all_free(self) -> bool:
        return bool((self._owner == -1).all())

    def _check(self, column: int, worker: int) -> None:
        if not 0 <= column < self.n_columns:
            raise IndexError(f"column {column} outside [0, {self.n_columns})")
        if worker < 0:
            raise ValueError(f"worker id must be non-negative, got {worker}")

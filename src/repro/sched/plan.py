"""Compiled epoch plans: reusable wave schedules for the SGD executors.

The paper's performance argument is #updates/s (Eq. 7), and every update the
host spends building Python lists of wave indices is an update not spent in
the kernel. This module compiles one epoch's wave schedule *once* into flat
NumPy buffers that are cached across epochs:

* :class:`EpochPlan` — the batch-Hogwild! layout (§5.1). One epoch is a
  single padded ``(n_waves, s)`` int64 matrix built by a vectorized
  reshape/transpose of the sample permutation, instead of a per-wave Python
  list. Under ``shuffle_each_epoch`` the underlying permutation is
  re-shuffled **in place** and the matrix refilled without reallocating.
* :class:`SerialPlan` — the serial-equivalent layout used inside one
  worker's chunk (wavefront grid blocks, LIBMF/NOMAD baselines): the greedy
  conflict-free segmentation of a sample sequence, materialized as
  ``starts``/``stops`` arrays.

Both plans are pure *schedule* objects: they never touch P/Q and draw no
randomness of their own, so executors keep full control of the RNG stream —
compiling a plan is numerically invisible (bit-identical update order to the
uncompiled schedule).

:class:`PlanStats` counts compiles / in-place re-permutations / cache hits;
executors surface it through ``repro.obs`` as per-epoch extras.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EpochPlan", "SerialPlan", "PlanShard", "PlanStats", "prev_occurrence"]


@dataclass
class PlanStats:
    """Plan-compilation counters, surfaced as ``repro.train.extra.plan_*``.

    ``compiles``
        full plan materializations (O(nnz) reshape + buffer allocation);
    ``repermutes``
        in-place epoch re-shuffles (O(nnz) refill, no allocation);
    ``cache_hits``
        epochs served by the cached matrix with no work at all.
    """

    compiles: int = 0
    repermutes: int = 0
    cache_hits: int = 0

    def as_extra(self) -> dict:
        return {
            "plan_compiles": self.compiles,
            "plan_repermutes": self.repermutes,
            "plan_cache_hits": self.cache_hits,
        }


@dataclass(frozen=True)
class PlanShard:
    """One executor's static slice of an :class:`EpochPlan`'s worker lanes.

    The compiled ``(n_waves, s)`` matrix assigns one *logical* worker per
    column; a shard owns the contiguous run of columns ``[col_lo, col_hi)``.
    Physical executors (OS processes, OS threads) each take one shard and
    walk every wave, executing only their own lanes — so within a wave the
    shards race for real, exactly the batch-Hogwild! concurrency the matrix
    encodes, while each shard's intra-lane order stays the compiled serial
    order. Padding only ever shortens a wave from the right, so the live
    lane count of wave ``i`` inside this shard is
    ``clip(lengths[i] - col_lo, 0, width)`` (:meth:`live_width`).
    """

    index: int
    col_lo: int
    col_hi: int

    @property
    def width(self) -> int:
        return self.col_hi - self.col_lo

    def live_width(self, wave_length: int) -> int:
        """Live (non-padding) lanes of a wave with ``wave_length`` samples."""
        live = wave_length - self.col_lo
        if live <= 0:
            return 0
        return live if live < self.width else self.width


class EpochPlan:
    """One epoch's batch-Hogwild! wave schedule as a padded index matrix.

    Wave ``t`` of group ``g`` holds sample position ``order[g*s*f + w*f + t]``
    for every worker ``w`` — each worker walks ``f`` consecutive samples of
    the shuffled order (Eq. 8 locality) while waves cut across workers. The
    whole epoch is one ``(n_waves, s)`` int64 matrix (row = wave), built with
    a single reshape/transpose; ``-1`` pads the tail group and every padded
    slot is a *trailing* slot of its row, so ``matrix[i, :lengths[i]]`` is
    wave ``i`` exactly as the legacy per-wave list builder produced it.

    The plan shares ``order`` with its owner: after the owner shuffles the
    permutation in place, :meth:`repermute` / :meth:`refill` rebuild the
    matrix into the existing buffers (no allocation in steady state).
    """

    __slots__ = (
        "workers", "f", "nnz", "order", "stats", "version",
        "_padded", "_grid", "_full", "matrix", "lengths", "n_waves", "width",
    )

    def __init__(
        self,
        order: np.ndarray,
        workers: int,
        f: int,
        stats: PlanStats | None = None,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if f <= 0:
            raise ValueError(f"f must be positive, got {f}")
        order = np.ascontiguousarray(order, dtype=np.int64)
        self.workers = int(workers)
        self.f = int(f)
        self.nnz = len(order)
        self.order = order
        self.stats = stats if stats is not None else PlanStats()
        span = self.workers * self.f
        n_groups = -(-self.nnz // span) if self.nnz else 0
        #: flat padded copy of the order; slots beyond nnz stay -1 forever
        self._padded = np.full(n_groups * span, -1, dtype=np.int64)
        #: (groups, workers, f) view of the padded order — chunk-major
        self._grid = self._padded.reshape(n_groups, self.workers, self.f)
        #: (groups * f, workers) wave-major matrix — the compiled schedule
        self._full = np.empty((n_groups * self.f, self.workers), dtype=np.int64)
        self.width = self.workers
        self.version = 0
        self.refill()
        lengths = np.count_nonzero(self._full >= 0, axis=1).astype(np.int64)
        # padding only ever shortens the *trailing* waves of the tail group,
        # so empty waves form a suffix and non-empty rows are a prefix view
        self.n_waves = int(np.count_nonzero(lengths))
        self.matrix = self._full[: self.n_waves]
        self.lengths = lengths[: self.n_waves]
        self.stats.compiles += 1

    # ------------------------------------------------------------------
    def refill(self) -> None:
        """Rebuild the wave matrix from (a possibly re-shuffled) ``order``.

        Pure buffer traffic: one copy into the padded layout, one strided
        transpose copy into the wave-major matrix. Lengths are invariant —
        shuffling permutes values, never the padding pattern.
        """
        self._padded[: self.nnz] = self.order
        np.copyto(
            self._full.reshape(self._grid.shape[0], self.f, self.workers),
            self._grid.transpose(0, 2, 1),
        )
        self.version += 1

    def repermute(self, rng: np.random.Generator) -> None:
        """Shuffle the shared ``order`` in place and refill the matrix.

        Draws exactly one ``rng.shuffle(order)`` — the same single draw the
        uncompiled schedule made per epoch, keeping RNG streams bit-identical.
        """
        rng.shuffle(self.order)
        self.refill()
        self.stats.repermutes += 1

    def note_cache_hit(self) -> None:
        self.stats.cache_hits += 1

    # ------------------------------------------------------------------
    def matches(self, order: np.ndarray, workers: int, f: int) -> bool:
        """True when this plan is the compiled form of exactly that schedule."""
        return self.order is order and self.workers == workers and self.f == f

    @property
    def n_samples(self) -> int:
        return self.nnz

    def wave(self, i: int) -> np.ndarray:
        """Wave ``i`` as an index view (no copy) into the compiled matrix."""
        return self.matrix[i, : self.lengths[i]]

    def iter_waves(self):
        """Yield every wave as an int64 index view, in execution order."""
        for i, length in enumerate(self.lengths.tolist()):
            yield self.matrix[i, :length]

    def wave_arrays(self) -> list[np.ndarray]:
        """Materialize the schedule as independent per-wave arrays (copies)."""
        return [self.wave(i).copy() for i in range(self.n_waves)]

    def shard(self, n_shards: int) -> list[PlanShard]:
        """Partition the plan's worker lanes into ``n_shards`` static shards.

        Columns split as evenly as possible (``linspace`` edges, so shard
        widths differ by at most one); the union of the shards covers every
        lane of every wave exactly once. With ``n_shards == 1`` the single
        shard spans the full width, so executing it wave-by-wave is the
        serial compiled-plan path bit for bit. Shards are *schedule* slices
        only — they share the underlying matrix and stay valid across
        :meth:`repermute` (widths and lengths are shuffle-invariant).
        """
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        edges = np.linspace(0, self.width, n_shards + 1).astype(np.int64)
        return [
            PlanShard(index=i, col_lo=int(edges[i]), col_hi=int(edges[i + 1]))
            for i in range(n_shards)
        ]


# ----------------------------------------------------------------------
# serial-equivalent plans (conflict-free segmentation)
# ----------------------------------------------------------------------
def prev_occurrence(x: np.ndarray) -> np.ndarray:
    """For each position, the previous position holding the same value
    (-1 if none)."""
    order = np.argsort(x, kind="stable")
    xs = x[order]
    prev = np.full(len(x), -1, dtype=np.int64)
    if len(x) > 1:
        same = xs[1:] == xs[:-1]
        prev[order[1:][same]] = order[:-1][same]
    return prev


class SerialPlan:
    """Greedy conflict-free segmentation of one worker's sample sequence.

    Each segment ``[starts[i], stops[i])`` contains no repeated row and no
    repeated column (Eq. 6 holds pairwise) and is at most ``max_wave`` long,
    so replaying the segments in order through the wave kernel is numerically
    identical to a serial pass over the sequence. This is the schedule
    representation behind :func:`repro.core.kernels.sgd_serial_update` and
    hence the wavefront scheduler's per-block execution.
    """

    __slots__ = ("starts", "stops", "n_samples", "max_wave")

    def __init__(self, starts: np.ndarray, stops: np.ndarray, max_wave: int) -> None:
        self.starts = starts
        self.stops = stops
        self.max_wave = int(max_wave)
        self.n_samples = int(stops[-1]) if len(stops) else 0

    @classmethod
    def compile(
        cls, rows: np.ndarray, cols: np.ndarray, max_wave: int = 64
    ) -> "SerialPlan":
        n = len(rows)
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return cls(empty, empty, max_wave)
        prev = np.maximum(prev_occurrence(rows), prev_occurrence(cols))
        starts: list[int] = []
        stops: list[int] = []
        start = 0
        while start < n:
            limit = min(start + max_wave, n)
            window = prev[start + 1 : limit]
            hits = np.nonzero(window >= start)[0]
            stop = start + 1 + int(hits[0]) if len(hits) else limit
            starts.append(start)
            stops.append(stop)
            start = stop
        return cls(
            np.asarray(starts, dtype=np.int64),
            np.asarray(stops, dtype=np.int64),
            max_wave,
        )

    @property
    def n_waves(self) -> int:
        return len(self.starts)

    def segments(self) -> list[tuple[int, int]]:
        """The segmentation as plain ``(start, stop)`` tuples."""
        return list(zip(self.starts.tolist(), self.stops.tolist()))

"""Training diagnostics and report builders.

Tools used across the experiments to characterize *why* a configuration
behaves the way it does: collision profiles over training, divergence
detection, and side-by-side convergence comparisons.
"""

from repro.analysis.diagnostics import (
    CollisionProfile,
    ConvergenceComparison,
    compare_histories,
    detect_divergence,
    profile_collisions,
)

__all__ = [
    "CollisionProfile",
    "profile_collisions",
    "detect_divergence",
    "ConvergenceComparison",
    "compare_histories",
]

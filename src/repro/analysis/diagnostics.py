"""Convergence and collision diagnostics.

These quantify the two failure modes the paper studies:

* **collision pressure** (§7.5) — how often a wave of concurrent workers
  touches the same row/column, measured against the analytic expectation;
* **stalls and divergence** (Figs. 13/14) — RMSE curves that plateau far
  above the reference or move upward.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.trainer import TrainHistory
from repro.data.container import RatingMatrix
from repro.sched.conflict import collision_fraction, expected_collision_fraction

__all__ = [
    "CollisionProfile",
    "profile_collisions",
    "detect_divergence",
    "ConvergenceComparison",
    "compare_histories",
]


@dataclass(frozen=True)
class CollisionProfile:
    """Measured vs expected collision pressure of one configuration."""

    workers: int
    m: int
    n: int
    measured_mean: float
    measured_max: float
    expected: float
    waves_sampled: int

    @property
    def matches_theory(self) -> bool:
        """Measured mean within 3 percentage points of the analytic value."""
        return abs(self.measured_mean - self.expected) < 0.03


def profile_collisions(
    ratings: RatingMatrix,
    workers: int,
    waves: int = 200,
    seed: int = 0,
) -> CollisionProfile:
    """Sample random waves of ``workers`` samples and measure collisions."""
    if workers <= 0 or waves <= 0:
        raise ValueError("workers and waves must be positive")
    if ratings.nnz < workers:
        raise ValueError(
            f"need at least {workers} samples to form a wave, have {ratings.nnz}"
        )
    rng = np.random.default_rng(seed)
    fracs = np.empty(waves, dtype=np.float64)  # lint: fp64-accumulator -- offline collision statistics
    for w in range(waves):
        idx = rng.choice(ratings.nnz, size=workers, replace=False)
        fracs[w] = collision_fraction(ratings.rows[idx], ratings.cols[idx])
    return CollisionProfile(
        workers=workers,
        m=ratings.n_rows,
        n=ratings.n_cols,
        measured_mean=float(fracs.mean()),
        measured_max=float(fracs.max()),
        expected=expected_collision_fraction(workers, ratings.n_rows, ratings.n_cols),
        waves_sampled=waves,
    )


def detect_divergence(
    history: TrainHistory,
    patience: int = 3,
    stall_tolerance: float = 1e-3,
) -> str:
    """Classify a training curve: ``"converging"``, ``"stalled"``, or
    ``"diverging"``.

    * diverging — NaN appears, or RMSE rises for ``patience`` consecutive
      epochs;
    * stalled — the last ``patience`` epochs improved by less than
      ``stall_tolerance`` in total;
    * converging — otherwise.
    """
    if patience < 1:
        raise ValueError(f"patience must be >= 1, got {patience}")
    curve = np.asarray(history.test_rmse, dtype=np.float64)  # lint: fp64-accumulator -- epoch-delta analysis in full precision
    if len(curve) == 0:
        raise ValueError("history has no test RMSE")
    if np.isnan(curve).any():
        return "diverging"
    if len(curve) > patience:
        deltas = np.diff(curve)
        if np.all(deltas[-patience:] > 0):
            return "diverging"
        if abs(curve[-patience - 1] - curve[-1]) < stall_tolerance:
            return "stalled"
    return "converging"


@dataclass(frozen=True)
class ConvergenceComparison:
    """Side-by-side summary of several training histories."""

    names: tuple[str, ...]
    final_rmse: dict[str, float]
    best_rmse: dict[str, float]
    epochs_to: dict[str, int | None]
    target: float
    winner: str

    def to_text(self) -> str:
        lines = [f"target RMSE {self.target:.4f}  winner: {self.winner}"]
        for name in self.names:
            reach = self.epochs_to[name]
            lines.append(
                f"  {name:20s} final {self.final_rmse[name]:.4f}  "
                f"best {self.best_rmse[name]:.4f}  "
                f"epochs-to-target {reach if reach is not None else '-'}"
            )
        return "\n".join(lines)


def compare_histories(
    histories: dict[str, TrainHistory], target: float | None = None
) -> ConvergenceComparison:
    """Compare named training runs; the winner reaches ``target`` first
    (ties broken by best RMSE). Default target = the worst best-RMSE, so
    every run can reach it."""
    if not histories:
        raise ValueError("need at least one history")
    for name, hist in histories.items():
        if not hist.test_rmse:
            raise ValueError(f"history {name!r} has no test RMSE")
    if target is None:
        target = max(h.best_test_rmse for h in histories.values()) * 1.0001
    epochs_to = {n: h.epochs_to_target(target) for n, h in histories.items()}
    ranked = sorted(
        histories,
        key=lambda n: (
            epochs_to[n] if epochs_to[n] is not None else float("inf"),
            histories[n].best_test_rmse,
        ),
    )
    return ConvergenceComparison(
        names=tuple(histories),
        final_rmse={n: h.final_test_rmse for n, h in histories.items()},
        best_rmse={n: h.best_test_rmse for n, h in histories.items()},
        epochs_to=epochs_to,
        target=float(target),
        winner=ranked[0],
    )
